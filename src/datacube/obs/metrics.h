#ifndef DATACUBE_OBS_METRICS_H_
#define DATACUBE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Process-wide metrics substrate: counters, gauges, and log-bucketed
// histograms registered by name (plus optional labels) in a thread-safe
// MetricsRegistry, with text exposition in Prometheus and JSON formats.
//
// Naming convention (see DESIGN.md "Observability"):
//   datacube_<module>_<what>[_<unit>][_total]
// e.g. datacube_cube_iter_calls_total, datacube_cube_execute_seconds.
//
// Hot paths accumulate into plain local counters and flush one delta per
// operation into the registry, so per-row work never touches an atomic or a
// lock; registry handles returned by Get* are stable for the registry's
// lifetime and may be cached.

namespace datacube::obs {

/// Label key/value pairs attached to one time series of a metric family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (e.g. live cells, open cursors).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  void Sub(double d) { Add(-d); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram: bucket i counts observations <= base * 2^i.
/// The default base of 1 microsecond with 40 doublings spans 1us .. ~13 days,
/// which covers any latency this engine can produce; non-latency uses (cell
/// counts, rows) fit by passing a different base. Observations below base
/// land in bucket 0; observations beyond the last bound land in the implicit
/// +Inf bucket.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  explicit Histogram(double base = 1e-6) : base_(base) {}

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of bucket i (inclusive).
  double bucket_bound(size_t i) const;
  /// Non-cumulative count of bucket i; index kNumBuckets is the +Inf bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  double base_;
  std::atomic<uint64_t> buckets_[kNumBuckets + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of metric families. Each (name, labels) pair is one
/// time series; all series of a name form a family sharing a help string and
/// a kind. Lookup takes a mutex — cache the returned reference outside hot
/// loops. Returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help = "",
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help = "",
                  const Labels& labels = {});
  /// `base` only takes effect when the series is first created.
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const Labels& labels = {}, double base = 1e-6);

  /// Reads a counter's current value; 0 if the series does not exist.
  uint64_t CounterValue(const std::string& name,
                        const Labels& labels = {}) const;

  /// Prometheus text exposition format (HELP/TYPE headers, one line per
  /// series; histograms expand to _bucket/_sum/_count).
  std::string RenderPrometheus() const;

  /// JSON exposition: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} keyed by "name{labels}".
  std::string RenderJson() const;

  /// Drops every registered series. Outstanding references become invalid —
  /// only for test isolation.
  void ResetForTest();

  /// The process-wide registry every engine component reports into.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_text;  // rendered {k="v",...} or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // label_text -> series (ordered for stable exposition)
    std::map<std::string, Series> series;
  };

  Family& GetFamily(const std::string& name, const std::string& help,
                    Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Renders labels as Prometheus text: {key="value",...}; empty for no labels.
std::string RenderLabels(const Labels& labels);

/// Registers the standard process-identity series into `registry`:
/// datacube_build_info (constant-1 gauge carrying version / compiler /
/// sanitizer labels — joinable onto any other series, the Prometheus idiom
/// for build metadata) and process_start_time_seconds (Unix time this
/// process initialized its metrics). Global() calls this once on creation;
/// tests exercising a fresh registry may call it explicitly.
void RegisterBuildInfo(MetricsRegistry& registry);

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_METRICS_H_
