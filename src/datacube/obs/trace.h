#ifndef DATACUBE_OBS_TRACE_H_
#define DATACUBE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

// Hierarchical per-query tracing: RAII scoped spans assemble a timing tree
// (span name, wall time, children, attached attributes like rows scanned or
// cells emitted). A Trace is installed on the current thread with a
// TraceScope; every ScopedSpan opened while it is installed attaches under
// the innermost open span. With no trace installed, ScopedSpan is a no-op
// costing one thread-local pointer check — instrumentation can therefore
// live permanently in hot paths. This is the machinery behind the SQL
// front end's EXPLAIN ANALYZE.

namespace datacube::obs {

/// One node of the timing tree.
struct SpanNode {
  std::string name;
  /// Nanoseconds from the trace's start to this span's start.
  int64_t start_ns = 0;
  /// Wall time of the span; -1 while still open.
  int64_t duration_ns = -1;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;

  const std::string* FindAttr(const std::string& key) const;
};

/// A completed or in-progress span tree for one operation (typically one
/// query). Not thread-safe; one trace belongs to one thread at a time.
class Trace {
 public:
  explicit Trace(std::string root_name);

  SpanNode& root() { return root_; }
  const SpanNode& root() const { return root_; }

  /// Monotonic nanoseconds since the trace was created.
  int64_t ElapsedNs() const;

  /// Indented text rendering:
  ///   name  duration  [key=value ...]
  /// Durations print in the largest fitting unit (ns/us/ms/s).
  std::string Render() const;

  /// The tree as nested JSON objects
  /// {"name":..,"duration_ns":..,"attrs":{..},"children":[..]}.
  std::string ToJson() const;

 private:
  int64_t start_time_ns_;  // absolute steady-clock base
  SpanNode root_;
};

/// Installs `trace` as the calling thread's active trace for this scope's
/// lifetime; nested ScopedSpans attach under it. On destruction the root
/// span's duration is closed and the previous active trace (if any) is
/// restored.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* prev_trace_;
  SpanNode* prev_current_;
};

/// RAII span: opens a child of the innermost open span on construction,
/// closes it (recording wall time) on destruction. Inactive — all methods
/// no-ops — when the thread has no installed trace.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return node_ != nullptr; }

  void Attr(const char* key, const std::string& value);
  void Attr(const char* key, const char* value);
  void Attr(const char* key, uint64_t value);
  void Attr(const char* key, int64_t value);
  void Attr(const char* key, int value);
  void Attr(const char* key, double value);

 private:
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
  Trace* trace_ = nullptr;
};

/// True when the calling thread has a trace installed — lets callers skip
/// work that only feeds span attributes (e.g. computing cell estimates).
bool TracingActive();

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_TRACE_H_
