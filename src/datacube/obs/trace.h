#ifndef DATACUBE_OBS_TRACE_H_
#define DATACUBE_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Hierarchical per-query tracing: RAII scoped spans assemble a timing tree
// (span name, wall time, children, attached attributes like rows scanned or
// cells emitted). A Trace is installed on the current thread with a
// TraceScope; every ScopedSpan opened while it is installed attaches under
// the innermost open span. With no trace installed, ScopedSpan is a no-op
// costing one thread-local pointer check — instrumentation can therefore
// live permanently in hot paths. This is the machinery behind the SQL
// front end's EXPLAIN ANALYZE.
//
// Cross-thread propagation: a trace's span context can be captured at
// task-spawn time (CurrentSpanContext) and re-installed on a pool thread
// (TaskTraceScope). Spans opened on the worker assemble into a thread-local
// subtree — no locks on the hot path — and the finished subtree is linked
// under the captured parent span at task completion, serialized by a
// per-trace stitch mutex. ThreadPool::TaskGroup does this automatically for
// every spawned task, so EXPLAIN ANALYZE on a parallel query shows the real
// task tree (morsel scans, partition merges, cascade tasks) stitched under
// the query root.

namespace datacube::obs {

/// One node of the timing tree.
struct SpanNode {
  std::string name;
  /// Nanoseconds from the trace's start to this span's start.
  int64_t start_ns = 0;
  /// Wall time of the span; -1 while still open.
  int64_t duration_ns = -1;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;

  const std::string* FindAttr(const std::string& key) const;
};

/// A span tree for one operation (typically one query). The tree is built
/// by one thread at a time per subtree; concurrent workers contribute
/// detached subtrees that are linked in under the stitch mutex
/// (AttachDetached). Reading the tree (Render/ToJson/root) is only safe
/// once every contributing task has completed — e.g. after
/// TaskGroup::Wait() — which is when EXPLAIN ANALYZE reads it.
class Trace {
 public:
  explicit Trace(std::string root_name);

  SpanNode& root() { return root_; }
  const SpanNode& root() const { return root_; }

  /// Monotonic nanoseconds since the trace was created.
  int64_t ElapsedNs() const;
  /// Absolute steady-clock nanoseconds of the trace's start.
  int64_t base_ns() const { return start_time_ns_; }

  /// Links a completed detached subtree under `parent` (a node of this
  /// trace). Thread-safe: concurrent task completions serialize on the
  /// trace's stitch mutex. `parent` must stay open (its owning scope alive)
  /// until every contributor has attached — TaskGroup::Wait guarantees
  /// this for pool tasks.
  void AttachDetached(SpanNode* parent,
                      std::vector<std::unique_ptr<SpanNode>> children);

  /// Indented text rendering:
  ///   name  duration  [key=value ...]
  /// Durations print in the largest fitting unit (ns/us/ms/s).
  ///
  /// Wide fan-outs stay readable: when a node has more than `top_k`
  /// same-named children (e.g. 64 merge_partition spans), only the top_k
  /// longest are rendered, followed by one aggregated
  ///   ... N more <name>  total <duration>
  /// rollup line. Pass top_k = 0 to render every child.
  std::string Render(size_t top_k = kDefaultRenderTopK) const;

  /// The tree as nested JSON objects — always complete, never top-K capped
  /// {"name":..,"duration_ns":..,"attrs":{..},"children":[..]}.
  std::string ToJson() const;

  static constexpr size_t kDefaultRenderTopK = 8;

 private:
  int64_t start_time_ns_;  // absolute steady-clock base
  SpanNode root_;
  std::mutex stitch_mu_;  // serializes AttachDetached into shared parents
};

/// Installs `trace` as the calling thread's active trace for this scope's
/// lifetime; nested ScopedSpans attach under it. On destruction the root
/// span's duration is closed and the previous active trace (if any) is
/// restored; the outermost scope also records the finished trace into
/// TraceLog::Global() for the stats server's /tracez endpoint.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* prev_trace_;
  SpanNode* prev_current_;
};

/// RAII span: opens a child of the innermost open span on construction,
/// closes it (recording wall time) on destruction. Inactive — all methods
/// no-ops — when the thread has no installed trace.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return node_ != nullptr; }

  void Attr(const char* key, const std::string& value);
  void Attr(const char* key, const char* value);
  void Attr(const char* key, uint64_t value);
  void Attr(const char* key, int64_t value);
  void Attr(const char* key, int value);
  void Attr(const char* key, double value);

 private:
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
  Trace* trace_ = nullptr;
};

/// A captured point in a trace that a task spawned onto another thread can
/// attach spans under. Cheap to copy; inactive (trace == nullptr) when the
/// capturing thread had no trace installed.
struct SpanContext {
  Trace* trace = nullptr;
  /// Stitch target: the span open at capture time.
  SpanNode* parent = nullptr;
  /// Absolute base time of the trace, so worker spans compute offsets
  /// without touching the Trace object.
  int64_t base_ns = 0;

  bool active() const { return trace != nullptr; }
};

/// Captures the calling thread's innermost open span as a stitch target for
/// work spawned onto other threads. Returns an inactive context when no
/// trace is installed — the whole propagation machinery then costs the
/// spawning side one thread-local load and the running side one branch.
SpanContext CurrentSpanContext();

/// Installs a captured SpanContext on the current (typically pool) thread
/// for one task's duration. While installed, ScopedSpans attach to a
/// task-local subtree with no locking; the destructor links the assembled
/// subtree under the captured parent via Trace::AttachDetached. With an
/// inactive context this *suspends* any trace installed on the running
/// thread instead — a task belongs to the query that spawned it, so an
/// untraced task's spans must not leak into whatever trace the helping
/// thread happens to have open. Always restores the previous thread state.
class TaskTraceScope {
 public:
  explicit TaskTraceScope(const SpanContext& ctx);
  ~TaskTraceScope();
  TaskTraceScope(const TaskTraceScope&) = delete;
  TaskTraceScope& operator=(const TaskTraceScope&) = delete;

 private:
  SpanContext ctx_;
  /// Task-local collector; never rendered itself, only its children are
  /// stitched under ctx_.parent at completion.
  SpanNode holder_;
  Trace* prev_trace_;
  SpanNode* prev_current_;
  int64_t prev_base_ns_;
  SpanNode* prev_holder_;
  SpanNode* prev_stitch_target_;
};

/// True when the calling thread has a trace installed — lets callers skip
/// work that only feeds span attributes (e.g. computing cell estimates).
bool TracingActive();

/// One finished trace as kept by TraceLog: the rendered JSON tree plus
/// identifying bits for the /tracez listing.
struct TraceRecord {
  std::string root_name;
  int64_t duration_ns = 0;
  std::string json;  // Trace::ToJson() of the finished tree
};

/// Bounded in-memory ring of recently completed traces, recorded by the
/// outermost TraceScope on destruction and served by the stats server's
/// /tracez endpoint. Thread-safe; keeps the newest `capacity` traces.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 32);

  void Record(TraceRecord record);
  std::vector<TraceRecord> Snapshot() const;
  /// {"traces":[{"root":..,"duration_ns":..,"tree":{..}},..]} newest last.
  std::string ToJson() const;
  uint64_t total_recorded() const;

  /// The process-wide ring the stats server reads.
  static TraceLog& Global();

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceRecord> ring_;
  uint64_t total_ = 0;
};

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_TRACE_H_
