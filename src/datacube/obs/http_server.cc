#include "datacube/obs/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace datacube::obs {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kLoopPollMs = 200;     // stop-flag check cadence
constexpr int kWritePollMs = 10000;  // per-wait budget for a slow reader
constexpr int kDrainMs = 2000;       // grace for a client to read its error

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 499:
      return "Client Closed Request";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return status >= 500 ? "Internal Server Error" : "Bad Request";
  }
}

/// Blocking-style send over a non-blocking fd: polls POLLOUT on EAGAIN so a
/// slow reader stalls only the worker writing to it, never the event loop.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, kWritePollMs) <= 0) return false;  // dead/stuck peer
      continue;
    }
    return false;
  }
  return true;
}

bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

std::string FormatHead(const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusText(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size());
  for (const auto& [name, value] : resp.headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  return head;
}

/// Writes `resp` for `method` ("HEAD" suppresses the body; "LINE" suppresses
/// the framing) and closes the fd.
void WriteResponse(int fd, const std::string& method,
                   const HttpResponse& resp) {
  if (method == "LINE") {
    SendAll(fd, resp.body);
  } else if (method == "HEAD") {
    SendAll(fd, FormatHead(resp));
  } else {
    SendAll(fd, FormatHead(resp)) && SendAll(fd, resp.body);
  }
  ::close(fd);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(in[i + 1]);
      int lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string HttpRequest::Header(const std::string& name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return v;
  }
  return "";
}

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string pair = query.substr(pos, end - pos);
    size_t eq = pair.find('=');
    std::string k = eq == std::string::npos ? pair : pair.substr(0, eq);
    if (UrlDecode(k) == key) {
      return eq == std::string::npos ? "" : UrlDecode(pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return "";
}

/// One connection owned by the event loop while its request is being read.
struct HttpServer::Conn {
  int fd = -1;
  std::string buffer;
  Clock::time_point deadline;
  /// Set once the blank line has been seen; body bytes still pending.
  bool head_done = false;
  /// Error response sent and write side shut; discarding reads until the
  /// peer closes or the drain grace expires.
  bool draining = false;
  size_t head_bytes = 0;     // request bytes before the body
  size_t content_length = 0;
  HttpRequest request;
};

Result<std::unique_ptr<HttpServer>> HttpServer::Start(const Options& options,
                                                      HttpHandler handler) {
  // Non-blocking: the event loop drains accept4 until EAGAIN, which must
  // not block when the backlog empties.
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("http server: bad host " + options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IOError(std::string("bind ") + options.host + ":" +
                                std::to_string(options.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<HttpServer>(new HttpServer(
      fd, ntohs(bound.sin_port), options, std::move(handler)));
}

HttpServer::HttpServer(int listen_fd, int port, Options options,
                       HttpHandler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port),
      host_(options_.host) {
  thread_ = std::thread([this] { EventLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (stop_.exchange(true)) return;
  // Unblock a pending poll; the loop timeout covers the re-arm race.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  // Wait for dispatched handlers to finish writing their responses; they
  // hold the only references to their connection fds.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::string HttpServer::url() const {
  return "http://" + host_ + ":" + std::to_string(port_);
}

void HttpServer::BeginDrain(Conn& conn, int status, const std::string& reason) {
  HttpResponse resp;
  resp.status = status;
  resp.body = reason + "\n";
  // Best-effort: error responses are tiny, so this never stalls the loop.
  SendAll(conn.fd, FormatHead(resp) + resp.body);
  // Half-close instead of close: closing with unread bytes in the receive
  // queue sends RST, which flushes the error response out of the peer's
  // buffer before it reads it — a mid-send slow client would see a reset
  // instead of its 408. Keep reading (and discarding) for a grace period.
  ::shutdown(conn.fd, SHUT_WR);
  conn.draining = true;
  conn.deadline = Clock::now() + std::chrono::milliseconds(kDrainMs);
  conn.buffer.clear();
}

void HttpServer::Dispatch(int fd, HttpRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
  }
  auto work = [this, fd, request = std::move(request)]() mutable {
    WriteResponse(fd, request.method, handler_(request));
    std::lock_guard<std::mutex> lock(mu_);
    if (--in_flight_ == 0) idle_cv_.notify_all();
  };
  if (options_.dispatcher) {
    options_.dispatcher(std::move(work));
  } else {
    std::thread(std::move(work)).detach();
  }
}

bool HttpServer::PumpConn(Conn& conn) {
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (conn.draining) continue;  // discard; just waiting for the close
      conn.buffer.append(buf, static_cast<size_t>(n));
      if (conn.buffer.size() > options_.max_request_bytes +
                                   options_.max_body_bytes + sizeof(buf)) {
        BeginDrain(conn, 413, "request too large");
        return true;
      }
      continue;
    }
    if (n == 0) {  // peer closed (or finished reading its error response)
      ::close(conn.fd);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    ::close(conn.fd);
    return false;
  }
  if (conn.draining) return true;

  if (!conn.head_done) {
    size_t head_end = conn.buffer.find("\r\n\r\n");
    size_t line_end = conn.buffer.find('\n');
    if (head_end == std::string::npos) {
      // Line protocol: a complete non-HTTP first line is a whole request.
      if (options_.enable_line_protocol && line_end != std::string::npos) {
        std::string line = conn.buffer.substr(0, line_end);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.find(" HTTP/") == std::string::npos) {
          HttpRequest req;
          req.method = "LINE";
          req.path = std::move(line);
          Dispatch(conn.fd, std::move(req));
          return false;
        }
      }
      if (conn.buffer.size() >= options_.max_request_bytes) {
        // Seed bug: this fell out of the read loop and was parsed as if
        // complete; answer 431 instead.
        BeginDrain(conn, 431, "request head too large");
        return true;
      }
      return true;  // keep reading the head
    }

    // Parse request line + headers.
    std::string head = conn.buffer.substr(0, head_end);
    size_t req_line_end = head.find("\r\n");
    std::string line = head.substr(
        0, req_line_end == std::string::npos ? head.size() : req_line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      BeginDrain(conn, 400, "malformed request line");
      return true;
    }
    HttpRequest req;
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (size_t q = target.find('?'); q != std::string::npos) {
      req.query = target.substr(q + 1);
      target.resize(q);
    }
    req.path = std::move(target);

    size_t pos = req_line_end == std::string::npos ? head.size()
                                                   : req_line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      std::string hline = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = hline.find(':');
      if (colon == std::string::npos) continue;
      std::string name = ToLower(hline.substr(0, colon));
      size_t vstart = colon + 1;
      while (vstart < hline.size() && hline[vstart] == ' ') ++vstart;
      req.headers.emplace_back(std::move(name), hline.substr(vstart));
    }

    size_t content_length = 0;
    std::string cl = req.Header("content-length");
    if (!cl.empty()) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        BeginDrain(conn, 400, "bad content-length");
        return true;
      }
      content_length = static_cast<size_t>(v);
    }
    if (content_length > options_.max_body_bytes) {
      BeginDrain(conn, 413, "request body too large");
      return true;
    }
    conn.head_done = true;
    conn.head_bytes = head_end + 4;
    conn.content_length = content_length;
    conn.request = std::move(req);
  }

  if (conn.buffer.size() >= conn.head_bytes + conn.content_length) {
    conn.request.body =
        conn.buffer.substr(conn.head_bytes, conn.content_length);
    Dispatch(conn.fd, std::move(conn.request));
    return false;
  }
  return true;  // keep reading the body
}

void HttpServer::EventLoop() {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});

    // Wake early enough to expire the nearest per-connection deadline.
    int timeout = kLoopPollMs;
    Clock::time_point now = Clock::now();
    for (const Conn& c : conns) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      c.deadline - now)
                      .count();
      timeout = std::max(0, std::min<int>(timeout, static_cast<int>(left)));
    }
    ::poll(fds.data(), fds.size(), timeout);
    if (stop_.load(std::memory_order_acquire)) break;

    // Connections polled this round; ones accepted below have no revents
    // yet and are pumped on the next iteration (their pending data makes
    // that poll return immediately).
    const size_t polled = conns.size();
    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        Conn conn;
        conn.fd = fd;
        conn.deadline =
            Clock::now() + std::chrono::milliseconds(options_.head_timeout_ms);
        conns.push_back(std::move(conn));
      }
    }

    now = Clock::now();
    size_t keep = 0;
    for (size_t i = 0; i < conns.size(); ++i) {
      Conn& conn = conns[i];
      bool alive = true;
      // fds[i + 1] matches conns[i] for the first `polled` entries; both
      // vectors are rebuilt per-iteration and conns is only compacted
      // after this loop.
      if (i < polled &&
          (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = PumpConn(conn);
      }
      if (alive && now >= conn.deadline) {
        if (conn.draining) {  // grace over; the peer never read its error
          ::close(conn.fd);
          alive = false;
        } else {
          // Seed bug: stalled clients were dropped with no response.
          BeginDrain(conn, 408, "timed out reading request");
        }
      }
      if (alive) {
        // No self-move when nothing before it was removed — a self-assigned
        // string may clear, losing the partially read request.
        if (keep != i) conns[keep] = std::move(conn);
        ++keep;
      }
    }
    conns.resize(keep);
  }
  for (Conn& c : conns) ::close(c.fd);
}

}  // namespace datacube::obs
