#include "datacube/obs/json_util.h"

#include <cstdio>

namespace datacube::obs {

namespace {

// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
// bytes at i do not begin one (invalid lead byte, truncated or out-of-range
// continuation, overlong encoding, surrogate, > U+10FFFF).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  unsigned char lead = static_cast<unsigned char>(s[i]);
  size_t len;
  unsigned char lo = 0x80, hi = 0xBF;  // bounds for the first continuation
  if (lead < 0x80) return 1;
  if (lead < 0xC2) return 0;  // continuation byte or overlong C0/C1 lead
  if (lead < 0xE0) {
    len = 2;
  } else if (lead < 0xF0) {
    len = 3;
    if (lead == 0xE0) lo = 0xA0;  // reject overlong
    if (lead == 0xED) hi = 0x9F;  // reject surrogates U+D800..U+DFFF
  } else if (lead < 0xF5) {
    len = 4;
    if (lead == 0xF0) lo = 0x90;  // reject overlong
    if (lead == 0xF4) hi = 0x8F;  // reject > U+10FFFF
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    unsigned char c = static_cast<unsigned char>(s[i + k]);
    if (c < (k == 1 ? lo : 0x80) || c > (k == 1 ? hi : 0xBF)) return 0;
  }
  return len;
}

}  // namespace

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      *out += "\\\"";
      ++i;
    } else if (c == '\\') {
      *out += "\\\\";
      ++i;
    } else if (c == '\n') {
      *out += "\\n";
      ++i;
    } else if (c == '\t') {
      *out += "\\t";
      ++i;
    } else if (c == '\r') {
      *out += "\\r";
      ++i;
    } else if (c == '\b') {
      *out += "\\b";
      ++i;
    } else if (c == '\f') {
      *out += "\\f";
      ++i;
    } else if (c < 0x20 || c == 0x7F) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
      ++i;
    } else if (c < 0x80) {
      out->push_back(static_cast<char>(c));
      ++i;
    } else {
      size_t len = Utf8SequenceLength(s, i);
      if (len == 0) {
        *out += "\\ufffd";  // replacement character for the invalid byte
        ++i;
      } else {
        out->append(s.substr(i, len));
        i += len;
      }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  AppendJsonEscaped(s, &out);
  return out;
}

}  // namespace datacube::obs
