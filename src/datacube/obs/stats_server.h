#ifndef DATACUBE_OBS_STATS_SERVER_H_
#define DATACUBE_OBS_STATS_SERVER_H_

#include <memory>
#include <string>

#include "datacube/common/result.h"
#include "datacube/common/status.h"
#include "datacube/obs/http_server.h"

// Embedded observability endpoint: the process's metrics and recent-query
// ring buffers behind the shared HttpServer transport (event-loop accepts,
// per-request dispatch — a stalled scraper no longer delays others).
// Endpoints (GET or HEAD):
//
//   /metrics   Prometheus text exposition of MetricsRegistry::Global()
//   /varz      the same registry as JSON
//   /queryz    recent query profiles (QueryProfileLog::Global())
//   /tracez    recent query traces (TraceLog::Global())
//   /          plain-text index of the above

namespace datacube::obs {

class StatsServer {
 public:
  struct Options {
    /// Interface to bind; loopback by default — the server has no auth.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /// Stalled-request window (408 after this); transport default when <= 0.
    int head_timeout_ms = 0;
  };

  /// Binds, listens, and starts serving. The returned server is already
  /// live; it stops and joins cleanly on destruction.
  static Result<std::unique_ptr<StatsServer>> Start(const Options& options);
  /// Start with default Options (loopback, ephemeral port).
  static Result<std::unique_ptr<StatsServer>> Start();

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Idempotent; blocks until the transport has fully stopped.
  void Stop();

  int port() const { return server_ == nullptr ? 0 : server_->port(); }
  std::string url() const;

  /// Routes one request to (status code, content type, body) — the server's
  /// brain, exposed for tests that don't want a socket and reused by the
  /// cube server to mount these endpoints on its own listener. GET and HEAD
  /// are served (the transport strips the body for HEAD); anything else is
  /// 405.
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  static Response Handle(const std::string& method, const std::string& path);

  /// Handle() as an HttpServer handler, including per-endpoint request
  /// counting; mount this to serve the stats endpoints from any listener.
  static HttpResponse HandleHttp(const HttpRequest& request);

 private:
  explicit StatsServer(std::unique_ptr<HttpServer> server);

  std::unique_ptr<HttpServer> server_;
};

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_STATS_SERVER_H_
