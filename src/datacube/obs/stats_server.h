#ifndef DATACUBE_OBS_STATS_SERVER_H_
#define DATACUBE_OBS_STATS_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "datacube/common/result.h"
#include "datacube/common/status.h"

// Embedded observability endpoint: a dependency-free HTTP/1.1 server that
// exposes the process's metrics and recent-query ring buffers to a scrape or
// a curl. One blocking accept thread, one connection at a time — monitoring
// traffic, not serving traffic. Endpoints (GET):
//
//   /metrics   Prometheus text exposition of MetricsRegistry::Global()
//   /varz      the same registry as JSON
//   /queryz    recent query profiles (QueryProfileLog::Global())
//   /tracez    recent query traces (TraceLog::Global())
//   /          plain-text index of the above

namespace datacube::obs {

class StatsServer {
 public:
  struct Options {
    /// Interface to bind; loopback by default — the server has no auth.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
  };

  /// Binds, listens, and starts the accept thread. The returned server is
  /// already serving; it stops and joins cleanly on destruction.
  static Result<std::unique_ptr<StatsServer>> Start(const Options& options);
  /// Start with default Options (loopback, ephemeral port).
  static Result<std::unique_ptr<StatsServer>> Start();

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Idempotent; blocks until the accept thread has exited.
  void Stop();

  int port() const { return port_; }
  std::string url() const;

  /// Routes one request path to (status code, content type, body) — the
  /// server's brain, exposed for tests that don't want a socket.
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  static Response Handle(const std::string& method, const std::string& path);

 private:
  StatsServer(int listen_fd, int port, std::string host);

  void ServeLoop();
  void HandleConnection(int fd);

  int listen_fd_;
  int port_;
  std::string host_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_STATS_SERVER_H_
