#ifndef DATACUBE_OBS_JSON_UTIL_H_
#define DATACUBE_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

// Shared JSON string escaping for every observability surface that emits
// JSON (Trace::ToJson, MetricsRegistry::RenderJson, query-profile JSONL,
// the stats server). Span names and attribute values come from user data
// (column names, string keys), so the escaper must produce a valid JSON
// string for arbitrary bytes, not just the friendly ones.

namespace datacube::obs {

/// Appends `s` escaped as a JSON string body (no surrounding quotes):
/// - `"` and `\` are backslash-escaped,
/// - control characters use the short forms (\n, \t, \r, \b, \f) or \u00XX,
/// - well-formed UTF-8 sequences pass through untouched,
/// - bytes that are not part of a well-formed UTF-8 sequence are replaced
///   with U+FFFD so the output is always valid UTF-8 JSON.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Returns `s` escaped as a JSON string body (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_JSON_UTIL_H_
