#ifndef DATACUBE_OBS_HTTP_SERVER_H_
#define DATACUBE_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/status.h"

// Reusable dependency-free HTTP/1.1 (plus optional line-protocol) transport.
// Extracted from the PR 7 stats server so the cube server and the stats
// endpoints can share one listener, and hardened against the seed's serving
// bugs:
//
//   * The accept thread never blocks on a client. It owns every in-progress
//     read through a poll()-based event loop over non-blocking sockets, so a
//     slow-loris sender cannot delay other connections (the seed handled
//     connections serially on the accept thread).
//   * Protocol errors get real responses instead of silent closes: a head
//     that reaches max_request_bytes without a blank line is answered `431
//     Request Header Fields Too Large`, a client that stalls mid-request is
//     answered `408 Request Timeout`, an oversized body `413`, and a
//     malformed request line `400` (the seed parsed truncated heads as if
//     complete and dropped timeouts with no response).
//   * Only fully-parsed requests are dispatched to workers; the handler runs
//     off the event loop via a pluggable Dispatcher (defaulting to one
//     detached thread per request), so the transport composes with the cube
//     ThreadPool without the obs library linking it.
//   * HEAD is first-class: the transport emits status line + headers with
//     the true Content-Length and omits the body.
//
// Line protocol: when `enable_line_protocol` is set and the first request
// line is not HTTP (no trailing " HTTP/x.y"), the line up to `\n` is treated
// as a complete request with method "LINE" and the handler's body is written
// raw with no HTTP framing — one-line SQL over `nc`.

namespace datacube::obs {

/// One parsed request, handed to the handler off the event loop.
struct HttpRequest {
  /// "GET", "POST", ... — or "LINE" for line-protocol requests, where
  /// `path` carries the whole stripped line and the other fields are empty.
  std::string method;
  /// Path with any query string removed ("/query").
  std::string path;
  /// Raw query string after '?', no leading '?' ("q=SELECT...&deadline_ms=5").
  std::string query;
  /// Lower-cased header names with unmodified values, in arrival order.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Request body (Content-Length bytes), empty if none.
  std::string body;

  /// First value of header `name` (lower-case), or "" if absent.
  std::string Header(const std::string& name) const;
  /// %-decoded value of query parameter `key`, or "" if absent.
  std::string QueryParam(const std::string& key) const;
};

/// What the handler returns; the transport adds framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers appended verbatim (name, value).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Runs `fn`, possibly asynchronously — the seam that lets a serving layer
/// route transport work onto its own thread pool without this library
/// depending on it. Must eventually run every accepted closure exactly once.
using HttpDispatcher = std::function<void(std::function<void()>)>;

/// The routing brain: one fully-parsed request in, one response out. Runs
/// off the event loop (on a dispatcher thread); may block.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    /// Interface to bind; loopback by default — the server has no auth.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /// A connection that has not delivered a complete request within this
    /// window is answered 408 and closed.
    int head_timeout_ms = 2000;
    /// Request-head cap; heads that hit it without a blank line get 431.
    size_t max_request_bytes = 8192;
    /// Body cap (Content-Length above it gets 413).
    size_t max_body_bytes = 4 << 20;
    /// Accept bare "<text>\n" requests as method "LINE" (see file comment).
    bool enable_line_protocol = false;
    /// Runs handler invocations; null = one detached thread per request.
    HttpDispatcher dispatcher;
  };

  /// Binds, listens, and starts the event-loop thread. The returned server
  /// is already serving `handler`; it stops and joins on destruction.
  static Result<std::unique_ptr<HttpServer>> Start(const Options& options,
                                                   HttpHandler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Idempotent. Joins the event loop, closes pending connections, and
  /// waits for all dispatched handlers to finish writing.
  void Stop();

  int port() const { return port_; }
  std::string host() const { return host_; }
  std::string url() const;

 private:
  struct Conn;

  HttpServer(int listen_fd, int port, Options options, HttpHandler handler);

  void EventLoop();
  /// Reads what is available on `conn`; returns false when the connection
  /// is finished with the event loop (dispatched, errored, or closed).
  bool PumpConn(Conn& conn);
  /// Sends a transport-level error (408/431/413/400), half-closes the
  /// write side, and leaves the connection draining: the loop keeps
  /// discarding the client's bytes for a grace period so the close never
  /// RSTs the error response out of the client's receive buffer (which is
  /// exactly how a mid-send slow client would otherwise lose its 408).
  void BeginDrain(Conn& conn, int status, const std::string& reason);
  /// Hands a complete request off to the dispatcher; takes ownership of fd.
  void Dispatch(int fd, HttpRequest request);

  const Options options_;
  const HttpHandler handler_;
  int listen_fd_;
  int port_;
  std::string host_;

  std::atomic<bool> stop_{false};
  std::thread thread_;

  // In-flight dispatched handlers (responses being computed/written).
  std::mutex mu_;
  std::condition_variable idle_cv_;
  int in_flight_ = 0;
};

/// %XX and '+' decoding for query-string values.
std::string UrlDecode(const std::string& in);

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_HTTP_SERVER_H_
