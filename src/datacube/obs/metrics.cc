#include "datacube/obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "datacube/obs/json_util.h"

// Normalize sanitizer detection: GCC defines __SANITIZE_*__, Clang exposes
// __has_feature.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace datacube::obs {

namespace {

// Shortest round-trippable formatting for exposition values.
std::string FormatDouble(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

void Histogram::Observe(double v) {
  size_t i = 0;
  double bound = base_;
  while (i < kNumBuckets && v > bound) {
    bound *= 2.0;
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_bound(size_t i) const {
  return base_ * std::ldexp(1.0, static_cast<int>(i));
}

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  } else if (!help.empty() && family.help.empty()) {
    family.help = help;
  }
  return family;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = GetFamily(name, help, Kind::kCounter)
                  .series[RenderLabels(labels)];
  if (s.counter == nullptr) {
    s.label_text = RenderLabels(labels);
    s.counter = std::make_unique<Counter>();
  }
  return *s.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s =
      GetFamily(name, help, Kind::kGauge).series[RenderLabels(labels)];
  if (s.gauge == nullptr) {
    s.label_text = RenderLabels(labels);
    s.gauge = std::make_unique<Gauge>();
  }
  return *s.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels, double base) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s =
      GetFamily(name, help, Kind::kHistogram).series[RenderLabels(labels)];
  if (s.histogram == nullptr) {
    s.label_text = RenderLabels(labels);
    s.histogram = std::make_unique<Histogram>(base);
  }
  return *s.histogram;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto family = families_.find(name);
  if (family == families_.end()) return 0;
  auto series = family->second.series.find(RenderLabels(labels));
  if (series == family->second.series.end() ||
      series->second.counter == nullptr) {
    return 0;
  }
  return series->second.counter->value();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [label_text, s] : family.series) {
      if (s.counter != nullptr) {
        out += name + label_text + " " + std::to_string(s.counter->value()) +
               "\n";
      } else if (s.gauge != nullptr) {
        out += name + label_text + " " + FormatDouble(s.gauge->value()) + "\n";
      } else if (s.histogram != nullptr) {
        const Histogram& h = *s.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
          uint64_t c = h.bucket_count(i);
          if (c == 0 && i < Histogram::kNumBuckets) continue;  // sparse
          cumulative = 0;
          for (size_t j = 0; j <= i; ++j) cumulative += h.bucket_count(j);
          std::string le = i == Histogram::kNumBuckets
                               ? "+Inf"
                               : FormatDouble(h.bucket_bound(i));
          std::string lbl = label_text.empty()
                                ? "{le=\"" + le + "\"}"
                                : label_text.substr(0, label_text.size() - 1) +
                                      ",le=\"" + le + "\"}";
          out += name + "_bucket" + lbl + " " + std::to_string(cumulative) +
                 "\n";
        }
        out += name + "_sum" + label_text + " " + FormatDouble(h.sum()) + "\n";
        out += name + "_count" + label_text + " " +
               std::to_string(h.count()) + "\n";
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  const char* kinds[] = {"counters", "gauges", "histograms"};
  for (int k = 0; k < 3; ++k) {
    if (k > 0) out << ",";
    out << "\"" << kinds[k] << "\":{";
    bool first = true;
    for (const auto& [name, family] : families_) {
      if (static_cast<int>(family.kind) != k) continue;
      for (const auto& [label_text, s] : family.series) {
        if (!first) out << ",";
        first = false;
        out << "\"" << JsonEscape(name + label_text) << "\":";
        if (s.counter != nullptr) {
          out << s.counter->value();
        } else if (s.gauge != nullptr) {
          out << FormatDouble(s.gauge->value());
        } else if (s.histogram != nullptr) {
          const Histogram& h = *s.histogram;
          out << "{\"count\":" << h.count() << ",\"sum\":"
              << FormatDouble(h.sum()) << ",\"buckets\":[";
          bool first_bucket = true;
          for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
            uint64_t c = h.bucket_count(i);
            if (c == 0) continue;
            if (!first_bucket) out << ",";
            first_bucket = false;
            std::string le = i == Histogram::kNumBuckets
                                 ? "\"+Inf\""
                                 : FormatDouble(h.bucket_bound(i));
            out << "{\"le\":" << le << ",\"count\":" << c << "}";
          }
          out << "]}";
        }
      }
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

void RegisterBuildInfo(MetricsRegistry& registry) {
#ifdef DATACUBE_VERSION_STRING
  const char* version = DATACUBE_VERSION_STRING;
#else
  const char* version = "0.0.0-dev";
#endif
#if defined(__clang__)
  std::string compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  std::string compiler = std::string("gcc ") + __VERSION__;
#else
  std::string compiler = "unknown";
#endif
#if defined(__SANITIZE_THREAD__)
  const char* sanitizer = "thread";
#elif defined(__SANITIZE_ADDRESS__)
  const char* sanitizer = "address";
#else
  const char* sanitizer = "none";
#endif
  registry
      .GetGauge("datacube_build_info",
                "Build metadata carried as labels; value is always 1",
                {{"version", version},
                 {"compiler", compiler},
                 {"sanitizer", sanitizer}})
      .Set(1);
  // Approximated by metrics-initialization time, which for this engine is
  // the first metric touch — early enough for uptime dashboards.
  static const double start_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  registry
      .GetGauge("process_start_time_seconds",
                "Unix time this process initialized its metrics")
      .Set(start_seconds);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    RegisterBuildInfo(*r);
    return r;
  }();
  return *registry;
}

}  // namespace datacube::obs
