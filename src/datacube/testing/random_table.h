#ifndef DATACUBE_TESTING_RANDOM_TABLE_H_
#define DATACUBE_TESTING_RANDOM_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datacube/cube/cube_spec.h"
#include "datacube/table/table.h"

namespace datacube {
namespace testing {

/// Shape of a deterministic adversarial random table. The generator is a
/// pure function of (seed, profile): the same pair always produces the same
/// table, so any failing differential run is reproducible from its seed.
///
/// Generated schema:
///   d0..d{dims-1}  grouping columns — STRING by default; `int_dim` turns
///                  d1 into INT64 keys (including values beyond 2^53 that
///                  collide when widened to double), `float_dim` turns the
///                  last dimension into FLOAT64 keys (including NaN, -0.0,
///                  denormals — the strict-weak-ordering stress case)
///   mi             INT64 measure; `int_extremes` mixes in ±INT64_MAX/MIN
///                  and ±(2^53+k) values beyond double precision
///   mf             FLOAT64 measure; `adversarial_floats` mixes in NaN,
///                  ±0.0, and denormals (magnitudes stay <= ~1e6 so that
///                  different summation orders agree within the
///                  differential tolerance)
///   mb             BOOL measure
struct RandomTableProfile {
  std::string label;
  size_t rows = 100;
  size_t dims = 2;
  /// Distinct non-null values per grouping column.
  size_t cardinality = 4;
  /// Probability that any key or measure cell is NULL.
  double null_rate = 0.1;
  /// Probability that a row duplicates an earlier row's grouping keys.
  double dup_rate = 0.0;
  bool int_dim = false;
  bool float_dim = false;
  bool int_extremes = false;
  bool adversarial_floats = true;
};

/// The fixed catalogue of adversarial profiles the tier-1 differential
/// suite sweeps: empty and single-row tables, NULL-heavy and
/// duplicate-heavy keys, float keys with NaN/-0.0, int keys and measures
/// beyond 2^53, ±INT64 extremes (SUM overflow), and a large table that
/// genuinely splits across the partition-parallel path.
std::vector<RandomTableProfile> AdversarialProfiles();

/// Deterministic random table for (seed, profile).
Table MakeRandomTable(uint64_t seed, const RandomTableProfile& profile);

/// Deterministic random CubeSpec over a table produced by `profile`:
/// rotates through full CUBE, ROLLUP, GROUP BY + CUBE compounds, and
/// explicit GROUPING SETS; aggregate list always covers distributive
/// (count/sum/min/max) and algebraic (avg/var_pop/stddev_pop) functions,
/// and optionally holistic ones (median/mode/count_distinct), which force
/// the algorithm-specific fallback paths.
CubeSpec MakeRandomSpec(uint64_t seed, const RandomTableProfile& profile,
                        bool include_holistic);

}  // namespace testing
}  // namespace datacube

#endif  // DATACUBE_TESTING_RANDOM_TABLE_H_
