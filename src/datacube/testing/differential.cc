#include "datacube/testing/differential.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include "datacube/cube/materialized_cube.h"
#include "datacube/table/csv.h"

namespace datacube {
namespace testing {

namespace {

/// Outcome of one cube execution: a table or an error. Same-code errors
/// count as agreement — numeric-edge failures (SUM overflow) must surface
/// from every algorithm, not just some of them.
struct Outcome {
  Status status;
  Table table;
  bool ok() const { return status.ok(); }
};

Outcome RunConfig(const Table& input, const CubeSpec& spec,
                  const OracleConfig& config) {
  CubeOptions options;
  options.algorithm = config.algorithm;
  options.num_threads = config.num_threads;
  options.use_legacy_cellmap = config.use_legacy_cellmap;
  options.use_batch_kernels = config.use_batch_kernels;
  if (config.morsel_rows != 0) options.morsel_rows = config.morsel_rows;
  if (config.num_partitions != 0) {
    options.num_partitions = config.num_partitions;
  }
  if (config.materialize_budget_bytes != 0) {
    options.materialize_budget_bytes = config.materialize_budget_bytes;
  }
  options.sort_result = true;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  Outcome out;
  if (r.ok()) {
    out.table = std::move(r).value().table;
  } else {
    out.status = r.status();
  }
  return out;
}

bool SameError(const Status& a, const Status& b) {
  // Each cell's error text is deterministic (the exact i128 sum is
  // order-independent), but *which* failing cell surfaces first depends on
  // the algorithm's assembly order — so agreement requires only the code.
  return a.code() == b.code();
}

/// Cell agreement. Exact (Value::Compare, which already identifies NaN with
/// NaN and -0.0 with +0.0) or, for numeric cells, within tolerance — the
/// allowance for reordered float summation across algorithms.
bool CellsMatch(const Value& a, const Value& b, double abs_tol,
                double rel_tol) {
  if (a.Compare(b) == 0) return true;
  if (!a.is_numeric() || !b.is_numeric()) return false;
  double da = a.AsDouble(), db = b.AsDouble();
  if (std::isnan(da) || std::isnan(db)) return std::isnan(da) == std::isnan(db);
  return std::abs(da - db) <=
         abs_tol + rel_tol * std::max(std::abs(da), std::abs(db));
}

struct ValueVecLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

std::string RenderKey(const Table& t, const std::vector<size_t>& key_cols,
                      size_t row) {
  std::string out;
  for (size_t i = 0; i < key_cols.size(); ++i) {
    if (i) out += ", ";
    out += t.schema().field(key_cols[i]).name + "=" +
           t.GetValue(row, key_cols[i]).ToString();
  }
  return out;
}

/// Splits the result schema into key columns (grouping columns, GROUPING()
/// discriminators, grouping_id) and aggregate columns, by matching the
/// spec's aggregate output names. The key columns uniquely address a cell:
/// under AllMode::kAllToken the ALL token disambiguates planes, and the
/// random spec generator always adds GROUPING() columns when it picks
/// kNullWithGrouping.
void SplitColumns(const Table& t, const CubeSpec& spec,
                  std::vector<size_t>* key_cols,
                  std::vector<size_t>* agg_cols) {
  std::set<std::string> agg_names;
  for (const AggregateSpec& a : spec.aggregates) {
    agg_names.insert(a.output_name);
  }
  for (size_t c = 0; c < t.schema().num_fields(); ++c) {
    if (agg_names.count(t.schema().field(c).name)) {
      agg_cols->push_back(c);
    } else {
      key_cols->push_back(c);
    }
  }
}

/// Diffs two successful results cell-for-cell. Fills `report` (labels are
/// already set by the caller) and returns whether the tables agree.
bool DiffTables(const Table& base, const Table& other, const CubeSpec& spec,
                double abs_tol, double rel_tol, size_t max_diffs,
                DiffReport* report) {
  if (base.schema().num_fields() != other.schema().num_fields()) {
    report->mismatch = "result schemas differ: " +
                       std::to_string(base.schema().num_fields()) + " vs " +
                       std::to_string(other.schema().num_fields()) +
                       " columns";
    return false;
  }
  for (size_t c = 0; c < base.schema().num_fields(); ++c) {
    if (base.schema().field(c).name != other.schema().field(c).name) {
      report->mismatch = "result schemas differ at column " +
                         std::to_string(c) + ": " +
                         base.schema().field(c).name + " vs " +
                         other.schema().field(c).name;
      return false;
    }
  }

  std::vector<size_t> key_cols, agg_cols;
  SplitColumns(base, spec, &key_cols, &agg_cols);

  std::map<std::vector<Value>, size_t, ValueVecLess> other_rows;
  for (size_t r = 0; r < other.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(key_cols.size());
    for (size_t c : key_cols) key.push_back(other.GetValue(r, c));
    other_rows.emplace(std::move(key), r);
  }

  bool agreed = true;
  auto add_diff = [&](CellDiff d) {
    agreed = false;
    if (report->cell_diffs.size() < max_diffs) {
      report->cell_diffs.push_back(std::move(d));
    }
  };

  for (size_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(key_cols.size());
    for (size_t c : key_cols) key.push_back(base.GetValue(r, c));
    auto it = other_rows.find(key);
    if (it == other_rows.end()) {
      add_diff({RenderKey(base, key_cols, r), "<row>", "present", "absent"});
      continue;
    }
    for (size_t c : agg_cols) {
      Value vb = base.GetValue(r, c);
      Value vo = other.GetValue(it->second, c);
      if (!CellsMatch(vb, vo, abs_tol, rel_tol)) {
        add_diff({RenderKey(base, key_cols, r), base.schema().field(c).name,
                  vb.ToString(), vo.ToString()});
      }
    }
    other_rows.erase(it);
  }
  for (const auto& [key, r] : other_rows) {
    add_diff({RenderKey(other, key_cols, r), "<row>", "absent", "present"});
  }
  return agreed;
}

/// Compares two outcomes; on disagreement fills `report` and returns false.
bool CompareOutcomes(const Outcome& base, const Outcome& other,
                     const CubeSpec& spec, double abs_tol, double rel_tol,
                     size_t max_diffs, DiffReport* report) {
  if (!base.ok() && !other.ok()) {
    if (SameError(base.status, other.status)) return true;
    report->mismatch = "both errored, differently: \"" +
                       base.status.ToString() + "\" vs \"" +
                       other.status.ToString() + "\"";
    return false;
  }
  if (base.ok() != other.ok()) {
    const Status& err = base.ok() ? other.status : base.status;
    report->mismatch = std::string(base.ok() ? "other" : "baseline") +
                       " errored while the " +
                       (base.ok() ? "baseline" : "other") +
                       " succeeded: " + err.ToString();
    return false;
  }
  return DiffTables(base.table, other.table, spec, abs_tol, rel_tol,
                    max_diffs, report);
}

/// True if the two configs still disagree on `input`. Used by minimization;
/// decrements *budget by the two executions it costs.
bool StillDisagrees(const Table& input, const CubeSpec& spec,
                    const OracleConfig& a, const OracleConfig& b,
                    const DiffOptions& options, size_t* budget) {
  if (*budget < 2) return false;
  *budget -= 2;
  DiffReport scratch;
  return !CompareOutcomes(RunConfig(input, spec, a), RunConfig(input, spec, b),
                          spec, options.abs_tol, options.rel_tol,
                          /*max_diffs=*/1, &scratch);
}

/// Greedy delta-debugging: repeatedly drop chunks of rows (halving the
/// chunk size down to single rows) while the disagreement survives.
std::vector<size_t> MinimizeRows(const Table& input, const CubeSpec& spec,
                                 const OracleConfig& a, const OracleConfig& b,
                                 const DiffOptions& options) {
  std::vector<size_t> rows(input.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  size_t budget = options.minimize_budget;

  size_t chunk = (rows.size() + 1) / 2;
  while (chunk >= 1 && budget >= 2) {
    size_t start = 0;
    while (start < rows.size() && budget >= 2) {
      std::vector<size_t> candidate;
      candidate.reserve(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(rows[i]);
      }
      Result<Table> sub = input.TakeRows(candidate);
      if (sub.ok() &&
          StillDisagrees(*sub, spec, a, b, options, &budget)) {
        rows = std::move(candidate);  // keep start: next chunk slid into place
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    chunk = (chunk + 1) / 2;
  }
  return rows;
}

void AttachCounterexample(const Table& input, const std::vector<size_t>& rows,
                          DiffReport* report) {
  report->counterexample_rows = rows;
  Result<Table> sub = input.TakeRows(rows);
  if (sub.ok()) report->counterexample = WriteCsvString(*sub);
}

}  // namespace

std::vector<OracleConfig> AllOracleConfigs() {
  return {
      {"naive_2n", CubeAlgorithm::kNaive2N, 1},
      {"union_group_by", CubeAlgorithm::kUnionGroupBy, 1},
      {"from_core", CubeAlgorithm::kFromCore, 1},
      {"array_cube", CubeAlgorithm::kArrayCube, 1},
      {"sort_rollup", CubeAlgorithm::kSortRollup, 1},
      {"sort_from_core", CubeAlgorithm::kSortFromCore, 1},
      {"parallel_x2", CubeAlgorithm::kAuto, 2},
      {"parallel_x8", CubeAlgorithm::kAuto, 8},
      // Adversarial parallel shapes: one-row morsels maximize cursor
      // contention; tiny/odd partition counts maximize per-partition skew;
      // 32 partitions on 3 threads exercises merge tasks outnumbering
      // workers.
      {"parallel_x3_m7_p5", CubeAlgorithm::kAuto, 3,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/7, /*num_partitions=*/5},
      {"parallel_x8_m1_p32", CubeAlgorithm::kAuto, 8,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/1,
       /*num_partitions=*/32},
      {"parallel_x2_p1", CubeAlgorithm::kAuto, 2,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/0, /*num_partitions=*/1},
      {"legacy_cellmap", CubeAlgorithm::kAuto, 1, /*use_legacy_cellmap=*/true},
      {"legacy_parallel_x2", CubeAlgorithm::kAuto, 2,
       /*use_legacy_cellmap=*/true},
      // Budgeted partial materialization with ancestor answering. Which
      // views survive the greedy depends on the random table's per-column
      // cardinalities, so each seed exercises a different selection. 512
      // bytes keeps only the core (every other set folds an ancestor);
      // 8 KiB keeps a mid-lattice mix; 1 MiB usually keeps everything but
      // still routes through the rewrite plumbing, here under 3 threads.
      // Holistic specs skip the rewrite entirely and trivially agree.
      {"budget_512b", CubeAlgorithm::kAuto, 1, /*use_legacy_cellmap=*/false,
       /*morsel_rows=*/0, /*num_partitions=*/0,
       /*materialize_budget_bytes=*/512},
      {"budget_8kb", CubeAlgorithm::kAuto, 1, /*use_legacy_cellmap=*/false,
       /*morsel_rows=*/0, /*num_partitions=*/0,
       /*materialize_budget_bytes=*/8192},
      {"budget_1mb_parallel_x3", CubeAlgorithm::kAuto, 3,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/0, /*num_partitions=*/0,
       /*materialize_budget_bytes=*/1u << 20},
      // Scalar-kernel escape hatch: the same engine with batched
      // aggregation disabled, serially and in an adversarial parallel
      // shape, so every sweep diffs the morsel-at-a-time kernels against
      // the per-row Iter path (and both against every config above, which
      // all run with kernels on).
      {"scalar_kernels", CubeAlgorithm::kAuto, 1,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/0, /*num_partitions=*/0,
       /*materialize_budget_bytes=*/0, /*use_batch_kernels=*/false},
      {"scalar_kernels_parallel_x3_m7_p5", CubeAlgorithm::kAuto, 3,
       /*use_legacy_cellmap=*/false, /*morsel_rows=*/7, /*num_partitions=*/5,
       /*materialize_budget_bytes=*/0, /*use_batch_kernels=*/false},
  };
}

std::string DiffReport::ToString() const {
  if (agreed) return "";
  std::ostringstream os;
  os << "differential mismatch: " << baseline_label << " vs " << other_label
     << "\n";
  if (!mismatch.empty()) os << "  " << mismatch << "\n";
  for (const CellDiff& d : cell_diffs) {
    os << "  [" << d.key << "] " << d.column << ": " << baseline_label << "="
       << d.baseline << "  " << other_label << "=" << d.other << "\n";
  }
  if (!counterexample.empty()) {
    os << "  minimized counterexample (" << counterexample_rows.size()
       << " rows):\n";
    std::istringstream lines(counterexample);
    std::string line;
    while (std::getline(lines, line)) os << "    " << line << "\n";
  }
  return os.str();
}

DiffReport RunDifferential(const Table& input, const CubeSpec& spec,
                           const std::vector<OracleConfig>& configs,
                           const DiffOptions& options) {
  DiffReport report;
  if (configs.empty()) return report;
  Outcome base = RunConfig(input, spec, configs[0]);
  for (size_t i = 1; i < configs.size(); ++i) {
    Outcome other = RunConfig(input, spec, configs[i]);
    DiffReport attempt;
    attempt.baseline_label = configs[0].label;
    attempt.other_label = configs[i].label;
    if (CompareOutcomes(base, other, spec, options.abs_tol, options.rel_tol,
                        options.max_diffs, &attempt)) {
      continue;
    }
    attempt.agreed = false;
    if (options.minimize && input.num_rows() > 1) {
      std::vector<size_t> rows =
          MinimizeRows(input, spec, configs[0], configs[i], options);
      // Re-diff on the minimized input so the reported cells match the
      // counterexample rather than the full table.
      Result<Table> sub = input.TakeRows(rows);
      if (sub.ok()) {
        DiffReport small;
        small.baseline_label = attempt.baseline_label;
        small.other_label = attempt.other_label;
        if (!CompareOutcomes(RunConfig(*sub, spec, configs[0]),
                             RunConfig(*sub, spec, configs[i]), spec,
                             options.abs_tol, options.rel_tol,
                             options.max_diffs, &small)) {
          small.agreed = false;
          attempt = std::move(small);
        }
      }
      AttachCounterexample(input, rows, &attempt);
    } else {
      std::vector<size_t> all(input.num_rows());
      for (size_t r = 0; r < all.size(); ++r) all[r] = r;
      AttachCounterexample(input, all, &attempt);
    }
    return attempt;  // first disagreement wins; one report is enough
  }
  return report;
}

DiffReport RunDifferential(const Table& input, const CubeSpec& spec,
                           const DiffOptions& options) {
  return RunDifferential(input, spec, AllOracleConfigs(), options);
}

DiffReport DiffResultTables(const Table& baseline, const Table& other,
                            const CubeSpec& spec,
                            const DiffOptions& options) {
  DiffReport report;
  report.baseline_label = "baseline";
  report.other_label = "other";
  report.agreed = DiffTables(baseline, other, spec, options.abs_tol,
                             options.rel_tol, options.max_diffs, &report);
  return report;
}

DiffReport RunMaintenanceDifferential(uint64_t seed,
                                      const RandomTableProfile& profile,
                                      const CubeSpec& spec,
                                      const MaintenanceOptions& options) {
  DiffReport report;
  report.baseline_label = "recompute_from_scratch";
  report.other_label = "materialized_maintenance";
  auto fail = [&](std::string what) {
    report.agreed = false;
    report.mismatch = std::move(what);
    return report;
  };

  Table initial = MakeRandomTable(seed, profile);
  Result<std::unique_ptr<MaterializedCube>> built =
      MaterializedCube::Build(initial, spec, {});
  if (!built.ok()) return fail("Build failed: " + built.status().ToString());
  std::unique_ptr<MaterializedCube> cube = std::move(built).value();

  std::vector<std::vector<Value>> live;
  live.reserve(initial.num_rows());
  for (size_t r = 0; r < initial.num_rows(); ++r) {
    live.push_back(initial.GetRow(r));
  }

  // Fresh rows for inserts come from the same adversarial generator, one
  // single-row table per insert so the whole stream is a function of `seed`.
  RandomTableProfile row_profile = profile;
  row_profile.rows = 1;
  row_profile.dup_rate = 0.0;

  std::mt19937_64 rng(seed ^ 0xa5a5a5a5deadbeefULL);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  auto check = [&](size_t op) -> bool {
    Table current{initial.schema()};
    current.Reserve(live.size());
    for (const auto& row : live) {
      Status s = current.AppendRow(row);
      if (!s.ok()) {
        report.mismatch = "replay bookkeeping broke: " + s.ToString();
        return false;
      }
    }
    Outcome expected;
    {
      Result<CubeResult> r = ExecuteCube(current, spec, {});
      if (r.ok()) {
        expected.table = std::move(r).value().table;
      } else {
        expected.status = r.status();
      }
    }
    Outcome actual;
    {
      Result<Table> t = cube->ToTable();
      if (t.ok()) {
        actual.table = std::move(t).value();
      } else {
        actual.status = t.status();
      }
    }
    DiffReport attempt;
    attempt.baseline_label = report.baseline_label;
    attempt.other_label = report.other_label;
    if (CompareOutcomes(expected, actual, spec, options.abs_tol,
                        options.rel_tol, /*max_diffs=*/5, &attempt)) {
      return true;
    }
    attempt.agreed = false;
    attempt.mismatch =
        "after op " + std::to_string(op) + " (" + std::to_string(live.size()) +
        " live rows)" +
        (attempt.mismatch.empty() ? "" : ": " + attempt.mismatch);
    attempt.counterexample = WriteCsvString(current);
    report = std::move(attempt);
    return false;
  };

  for (size_t op = 1; op <= options.ops; ++op) {
    bool do_delete = !live.empty() && unit(rng) < options.delete_rate;
    if (do_delete) {
      size_t idx = rng() % live.size();
      Status s = cube->ApplyDelete(live[idx]);
      if (!s.ok()) return fail("ApplyDelete failed at op " +
                               std::to_string(op) + ": " + s.ToString());
      live[idx] = std::move(live.back());
      live.pop_back();
    } else {
      std::vector<Value> row =
          MakeRandomTable(seed * 1315423911ULL + op, row_profile).GetRow(0);
      Status s = cube->ApplyInsert(row);
      if (!s.ok()) return fail("ApplyInsert failed at op " +
                               std::to_string(op) + ": " + s.ToString());
      live.push_back(std::move(row));
    }

    if (options.checkpoint_roundtrip && op == options.ops / 2) {
      std::string path = options.checkpoint_dir + "/datacube_maint_" +
                         std::to_string(seed) + ".ckpt";
      Status s = cube->SaveToFile(path);
      if (!s.ok()) return fail("SaveToFile failed: " + s.ToString());
      Result<std::unique_ptr<MaterializedCube>> loaded =
          MaterializedCube::LoadFromFile(spec, path);
      std::remove(path.c_str());
      if (!loaded.ok()) {
        return fail("LoadFromFile failed: " + loaded.status().ToString());
      }
      cube = std::move(loaded).value();  // keep maintaining the reloaded cube
    }

    if (op % options.check_every == 0 || op == options.ops) {
      if (!check(op)) return report;
    }
  }
  return report;
}

}  // namespace testing
}  // namespace datacube
