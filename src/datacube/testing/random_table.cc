#include "datacube/testing/random_table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "datacube/cube/cube_operator.h"

namespace datacube {
namespace testing {

namespace {

constexpr int64_t kTwo53 = int64_t{1} << 53;  // doubles lose exactness here

// Key pools. Each dimension draws from the first `cardinality` entries of
// its pool (wrapping), so cardinality stays controlled while the values
// themselves remain adversarial.

Value StringKey(uint64_t pick, size_t cardinality) {
  static const char* kOddballs[] = {"", " ", "v,comma", "v\"quote",
                                    "v\nnewline"};
  uint64_t idx = pick % cardinality;
  // The first few distinct keys are deliberately hostile to CSV round-trips
  // and string compares; the rest are plain v<k>.
  if (idx < sizeof(kOddballs) / sizeof(kOddballs[0])) {
    return Value::String(kOddballs[idx]);
  }
  return Value::String("v" + std::to_string(idx));
}

Value IntKey(uint64_t pick, size_t cardinality) {
  // 2^53+1 and 2^53+2 are distinct int64 keys that collide when widened to
  // double — the exact-comparison stress case.
  static const int64_t kPool[] = {
      kTwo53 + 1, kTwo53 + 2,
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(),
      0, -1, 7, 42, -1000000, kTwo53};
  return Value::Int64(kPool[pick % std::min<size_t>(
      cardinality, sizeof(kPool) / sizeof(kPool[0]))]);
}

Value FloatKey(uint64_t pick, size_t cardinality) {
  // NaN and -0.0 grouping keys: sorted and hashed algorithms must still
  // build identical groups.
  static const double kPool[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -0.0, 0.0, 1.5, -2.25,
      std::numeric_limits<double>::denorm_min(),
      1e-300, 7.0, -1.0, 3.25};
  return Value::Float64(kPool[pick % std::min<size_t>(
      cardinality, sizeof(kPool) / sizeof(kPool[0]))]);
}

Value IntMeasure(std::mt19937_64& rng, bool extremes) {
  uint64_t roll = rng() % 100;
  if (extremes && roll < 10) {
    static const int64_t kExtremes[] = {
        std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max() - 1,
        std::numeric_limits<int64_t>::min() + 1};
    return Value::Int64(kExtremes[rng() % 4]);
  }
  if (roll < 25) {
    // Exact-integer stress just beyond double precision: sums of these
    // expose any float-mirrored int accumulation.
    return Value::Int64((rng() % 2 ? 1 : -1) *
                        (kTwo53 + static_cast<int64_t>(rng() % 16)));
  }
  return Value::Int64(static_cast<int64_t>(rng() % 2001) - 1000);
}

Value FloatMeasure(std::mt19937_64& rng, bool adversarial) {
  uint64_t roll = rng() % 100;
  if (adversarial) {
    if (roll < 3) {
      return Value::Float64(std::numeric_limits<double>::quiet_NaN());
    }
    if (roll < 8) return Value::Float64(rng() % 2 ? 0.0 : -0.0);
    if (roll < 12) {
      return Value::Float64(std::numeric_limits<double>::denorm_min() *
                            static_cast<double>(1 + rng() % 7));
    }
  }
  // Magnitudes stay <= 1e6: the differential tolerance then soundly absorbs
  // the bounded rounding differences of reordered summation.
  double mag = std::ldexp(static_cast<double>(rng() % (1 << 20)),
                          static_cast<int>(rng() % 21) - 20);  // [0, 1e6)
  return Value::Float64(rng() % 2 ? mag : -mag);
}

}  // namespace

Table MakeRandomTable(uint64_t seed, const RandomTableProfile& profile) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<Field> fields;
  for (size_t d = 0; d < profile.dims; ++d) {
    DataType type = DataType::kString;
    if (profile.int_dim && d == 1 && profile.dims > 1) type = DataType::kInt64;
    if (profile.float_dim && d + 1 == profile.dims) type = DataType::kFloat64;
    fields.push_back(Field{"d" + std::to_string(d), type, /*nullable=*/true});
  }
  fields.push_back(Field{"mi", DataType::kInt64, /*nullable=*/true});
  fields.push_back(Field{"mf", DataType::kFloat64, /*nullable=*/true});
  fields.push_back(Field{"mb", DataType::kBool, /*nullable=*/true});

  Table t{Schema{fields}};
  t.Reserve(profile.rows);
  std::vector<std::vector<Value>> key_history;
  for (size_t r = 0; r < profile.rows; ++r) {
    std::vector<Value> row;
    row.reserve(fields.size());
    if (!key_history.empty() && unit(rng) < profile.dup_rate) {
      row = key_history[rng() % key_history.size()];
    } else {
      for (size_t d = 0; d < profile.dims; ++d) {
        if (unit(rng) < profile.null_rate) {
          row.push_back(Value::Null());
          continue;
        }
        switch (fields[d].type) {
          case DataType::kInt64:
            row.push_back(IntKey(rng(), profile.cardinality));
            break;
          case DataType::kFloat64:
            row.push_back(FloatKey(rng(), profile.cardinality));
            break;
          default:
            row.push_back(StringKey(rng(), profile.cardinality));
            break;
        }
      }
      key_history.push_back(row);
    }
    row.push_back(unit(rng) < profile.null_rate
                      ? Value::Null()
                      : IntMeasure(rng, profile.int_extremes));
    row.push_back(unit(rng) < profile.null_rate
                      ? Value::Null()
                      : FloatMeasure(rng, profile.adversarial_floats));
    row.push_back(unit(rng) < profile.null_rate ? Value::Null()
                                                : Value::Bool(rng() % 2 == 0));
    Status s = t.AppendRow(row);
    (void)s;  // generator emits schema-conforming rows by construction
  }
  return t;
}

CubeSpec MakeRandomSpec(uint64_t seed, const RandomTableProfile& profile,
                        bool include_holistic) {
  std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dULL + 7);
  CubeSpec spec;

  std::vector<GroupExpr> dims;
  for (size_t d = 0; d < profile.dims; ++d) {
    dims.push_back(GroupCol("d" + std::to_string(d)));
  }

  switch (rng() % 4) {
    case 0:  // full CUBE
      spec.cube = dims;
      break;
    case 1:  // ROLLUP (SortRollup's home turf)
      spec.rollup = dims;
      break;
    case 2:  // GROUP BY prefix + CUBE of the rest
      if (profile.dims >= 2) {
        spec.group_by = {dims[0]};
        spec.cube.assign(dims.begin() + 1, dims.end());
      } else {
        spec.cube = dims;
      }
      break;
    default: {  // explicit GROUPING SETS: random subset of the power set
      spec.cube = dims;
      std::vector<GroupingSet> sets;
      GroupingSet full = (profile.dims >= 64)
                             ? ~GroupingSet{0}
                             : ((GroupingSet{1} << profile.dims) - 1);
      sets.push_back(full);  // keep the core so every algorithm has a seed
      for (GroupingSet s = 0; s < full; ++s) {
        if (rng() % 2 == 0) sets.push_back(s);
      }
      spec.explicit_sets = sets;
      break;
    }
  }

  spec.aggregates = {CountStar("n"),
                     Agg("count", "mi", "count_mi"),
                     Agg("sum", "mi", "sum_mi"),
                     Agg("sum", "mf", "sum_mf"),
                     Agg("min", "mi", "min_mi"),
                     Agg("max", "mf", "max_mf"),
                     Agg("avg", "mf", "avg_mf"),
                     Agg("var_pop", "mf", "var_mf"),
                     Agg("stddev_pop", "mf", "sd_mf"),
                     Agg("bool_and", "mb", "all_mb")};
  if (include_holistic) {
    spec.aggregates.push_back(Agg("median", "mf", "med_mf"));
    spec.aggregates.push_back(Agg("mode", "d0", "mode_d0"));
    spec.aggregates.push_back(Agg("count_distinct", "mi", "dist_mi"));
  }
  if (rng() % 4 == 0) {
    AggregateSpec ds = Agg("sum", "mi", "dsum_mi");
    ds.distinct = true;
    spec.aggregates.push_back(ds);
  }

  if (rng() % 4 == 0) {
    spec.all_mode = AllMode::kNullWithGrouping;
    spec.add_grouping_columns = true;
  }
  if (rng() % 3 == 0) spec.add_grouping_id = true;
  return spec;
}

std::vector<RandomTableProfile> AdversarialProfiles() {
  std::vector<RandomTableProfile> ps;
  RandomTableProfile p;

  p.label = "plain_small";
  p.rows = 80;
  p.dims = 2;
  p.cardinality = 3;
  p.null_rate = 0.1;
  ps.push_back(p);

  p = {};
  p.label = "empty";
  p.rows = 0;
  p.dims = 2;
  ps.push_back(p);

  p = {};
  p.label = "single_row";
  p.rows = 1;
  p.dims = 3;
  p.null_rate = 0.3;
  ps.push_back(p);

  p = {};
  p.label = "null_heavy";
  p.rows = 120;
  p.dims = 3;
  p.cardinality = 3;
  p.null_rate = 0.6;
  ps.push_back(p);

  p = {};
  p.label = "dup_heavy";
  p.rows = 200;
  p.dims = 2;
  p.cardinality = 2;
  p.null_rate = 0.05;
  p.dup_rate = 0.7;
  ps.push_back(p);

  p = {};
  p.label = "float_keys_nan";
  p.rows = 150;
  p.dims = 2;
  p.cardinality = 6;
  p.null_rate = 0.15;
  p.float_dim = true;
  ps.push_back(p);

  p = {};
  p.label = "int_keys_beyond_2_53";
  p.rows = 150;
  p.dims = 3;
  p.cardinality = 6;
  p.null_rate = 0.1;
  p.int_dim = true;
  ps.push_back(p);

  p = {};
  p.label = "int64_extremes_overflow";
  p.rows = 100;
  p.dims = 2;
  p.cardinality = 3;
  p.null_rate = 0.1;
  p.int_extremes = true;
  ps.push_back(p);

  p = {};
  p.label = "wide_4d";
  p.rows = 250;
  p.dims = 4;
  p.cardinality = 3;
  p.null_rate = 0.2;
  p.int_dim = true;
  p.float_dim = true;
  ps.push_back(p);

  // Big enough that the partition-parallel path really splits the input
  // (>= 1024 rows per thread) and merges scratchpads across partitions.
  p = {};
  p.label = "parallel_scale";
  p.rows = 4096;
  p.dims = 2;
  p.cardinality = 5;
  p.null_rate = 0.1;
  ps.push_back(p);

  return ps;
}

}  // namespace testing
}  // namespace datacube
