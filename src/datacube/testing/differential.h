#ifndef DATACUBE_TESTING_DIFFERENTIAL_H_
#define DATACUBE_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/testing/random_table.h"

namespace datacube {
namespace testing {

/// One execution configuration the oracle runs: a forced algorithm plus a
/// thread count. `label` is what failure reports print, e.g. "from_core" or
/// "parallel_x8".
struct OracleConfig {
  std::string label;
  CubeAlgorithm algorithm = CubeAlgorithm::kAuto;
  int num_threads = 1;
  /// Run on the legacy Value-vector CellMap core instead of the columnar
  /// one — the escape-hatch config that keeps old-vs-new in the oracle.
  bool use_legacy_cellmap = false;
  /// Parallel-path shape knobs (0 = the engine defaults). Adversarial
  /// values (morsel_rows=1, num_partitions=5) exercise cursor contention
  /// and partition skew that the defaults never would.
  size_t morsel_rows = 0;
  size_t num_partitions = 0;
  /// Byte budget for partial-cube materialization with ancestor answering
  /// (0 = materialize every requested grouping set directly). Tiny budgets
  /// force a core-only selection, so every other set is answered by folding
  /// a materialized ancestor — the rewrite path the oracle must prove
  /// equivalent to direct computation. Holistic specs skip the rewrite.
  size_t materialize_budget_bytes = 0;
  /// Batched aggregation kernels (the columnar default). The scalar_kernels
  /// configs flip this off, so every sweep also diffs the morsel-at-a-time
  /// kernels against the per-row Iter path cell for cell.
  bool use_batch_kernels = true;
};

/// The full sweep: every Section 5 algorithm forced serially (each falls
/// back gracefully when the spec shape rules it out, so forcing is always
/// legal), the morsel-driven parallel path at 2 and 8 threads plus
/// adversarial morsel/partition shapes (one-row morsels, odd and degenerate
/// partition counts), the legacy CellMap core — so every run also diffs the
/// columnar core against the pre-columnar implementation — and budgeted
/// partial materialization at three budgets, so every run also diffs
/// ancestor answering against direct computation.
std::vector<OracleConfig> AllOracleConfigs();

/// One cell where two configurations disagreed.
struct CellDiff {
  std::string key;       // rendered grouping key, "d0=Chevy, d1=ALL"
  std::string column;    // output column name
  std::string baseline;  // rendered value from the baseline config
  std::string other;     // rendered value from the disagreeing config
};

/// Outcome of a differential run. `ok()` means every configuration produced
/// the same relation (or the identical error) as the baseline. On failure the
/// report carries the first disagreeing configuration pair, up to `max_diffs`
/// cell diffs, and — when minimization is enabled — the smallest input-row
/// subset that still reproduces the disagreement, so the counterexample can
/// be turned into a unit test directly.
struct DiffReport {
  bool agreed = true;
  std::string baseline_label;
  std::string other_label;
  /// Structural mismatch (schema/row-count/status) description, if any.
  std::string mismatch;
  std::vector<CellDiff> cell_diffs;
  /// Rows of the (possibly minimized) input that reproduce the failure.
  std::vector<size_t> counterexample_rows;
  /// Rendered counterexample table (empty when agreed).
  std::string counterexample;

  bool ok() const { return agreed; }
  /// Multi-line human-readable failure report ("" when agreed).
  std::string ToString() const;
};

struct DiffOptions {
  /// Tolerance for FLOAT64 cells: |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
  /// Sound because the generator caps float magnitudes (~1e6), bounding the
  /// rounding drift between different summation orders. INT64, BOOL, STRING
  /// and NULL/ALL cells must match exactly; NaN matches NaN.
  double abs_tol = 1e-6;
  double rel_tol = 1e-9;
  size_t max_diffs = 5;
  /// Shrink a failing input with greedy delta-debugging before reporting.
  bool minimize = true;
  /// Cap on cube executions spent minimizing.
  size_t minimize_budget = 200;
};

/// Runs `spec` over `input` under every configuration in `configs` (the
/// first is the baseline) and diffs the results cell-for-cell. Two
/// configurations also agree when both fail with the same StatusCode —
/// numeric-edge errors (e.g. SUM overflow) must surface from every
/// algorithm, though which failing cell is reported first may differ.
DiffReport RunDifferential(const Table& input, const CubeSpec& spec,
                           const std::vector<OracleConfig>& configs,
                           const DiffOptions& options = {});

/// Convenience: RunDifferential over AllOracleConfigs().
DiffReport RunDifferential(const Table& input, const CubeSpec& spec,
                           const DiffOptions& options = {});

/// Diffs two already-computed cube results with the oracle's alignment and
/// tolerance rules (no execution). This is the oracle's sensitivity hook:
/// tests perturb one cell of a real result and assert the diff is caught,
/// proving the harness would notice a genuinely wrong algorithm.
DiffReport DiffResultTables(const Table& baseline, const Table& other,
                            const CubeSpec& spec,
                            const DiffOptions& options = {});

struct MaintenanceOptions {
  /// Number of insert/delete operations to replay.
  size_t ops = 60;
  /// Probability an operation is a DELETE of a live row (else INSERT).
  double delete_rate = 0.45;
  /// Diff the maintained cube against recompute-from-scratch every this
  /// many operations (and always once at the end).
  size_t check_every = 15;
  /// Checkpoint (SaveToFile/LoadFromFile) halfway through the stream and
  /// continue on the reloaded cube, proving scratchpad persistence keeps
  /// maintaining correctly.
  bool checkpoint_roundtrip = true;
  /// Directory for the checkpoint file (named by seed, removed after).
  std::string checkpoint_dir = "/tmp";
  double abs_tol = 1e-6;
  double rel_tol = 1e-9;
};

/// Second oracle mode (Section 6): replays a seeded random insert/delete
/// stream against a MaterializedCube and periodically diffs its incremental
/// state (ToTable) against ExecuteCube recomputed from the surviving base
/// rows. Inserted rows come from the same adversarial generator as the
/// initial table.
DiffReport RunMaintenanceDifferential(uint64_t seed,
                                      const RandomTableProfile& profile,
                                      const CubeSpec& spec,
                                      const MaintenanceOptions& options = {});

}  // namespace testing
}  // namespace datacube

#endif  // DATACUBE_TESTING_DIFFERENTIAL_H_
