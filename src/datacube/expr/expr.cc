#include "datacube/expr/expr.h"

#include <cmath>

namespace datacube {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

namespace {

// SQL LIKE matcher: % matches any run (including empty), _ any one char.
// Iterative two-pointer algorithm with backtracking to the last %.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

ExprPtr Expr::Lit(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kColumnRef;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kUnary;
  e->unary_op_ = op;
  e->args_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kBinary;
  e->binary_op_ = op;
  e->args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Call(std::string function, std::vector<ExprPtr> args) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kCall;
  e->name_ = std::move(function);
  e->args_ = std::move(args);
  return e;
}

ExprPtr Expr::Case(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                   ExprPtr else_expr) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kCase;
  for (auto& [when, then] : branches) {
    e->args_.push_back(std::move(when));
    e->args_.push_back(std::move(then));
  }
  if (else_expr != nullptr) {
    e->args_.push_back(std::move(else_expr));
    e->case_has_else_ = true;
  }
  return e;
}

const std::string* Expr::AsColumnName() const {
  return kind_ == Kind::kColumnRef ? &name_ : nullptr;
}

ExprPtr Expr::Clone() const {
  auto copy = ExprPtr(new Expr(*this));
  for (ExprPtr& arg : copy->args_) arg = arg->Clone();
  return copy;
}

Status Expr::BindCase() {
  size_t num_branches = (args_.size() - (case_has_else_ ? 1 : 0)) / 2;
  if (num_branches == 0) {
    return Status::InvalidArgument("CASE requires at least one WHEN branch");
  }
  // Result type: all THEN/ELSE results must agree; mixed numerics widen.
  bool have_type = false;
  DataType result = DataType::kInt64;
  auto fold = [&](DataType t) -> Status {
    if (!have_type) {
      result = t;
      have_type = true;
      return Status::OK();
    }
    if (result == t) return Status::OK();
    if (IsNumeric(result) && IsNumeric(t)) {
      result = DataType::kFloat64;
      return Status::OK();
    }
    return Status::TypeError("CASE branches have incompatible types");
  };
  for (size_t b = 0; b < num_branches; ++b) {
    if (args_[2 * b]->output_type() != DataType::kBool) {
      return Status::TypeError("CASE WHEN condition must be boolean");
    }
    DATACUBE_RETURN_IF_ERROR(fold(args_[2 * b + 1]->output_type()));
  }
  if (case_has_else_) {
    DATACUBE_RETURN_IF_ERROR(fold(args_.back()->output_type()));
  }
  output_type_ = result;
  return Status::OK();
}

Result<Value> Expr::EvaluateCase(const Table& table, size_t row) const {
  size_t num_branches = (args_.size() - (case_has_else_ ? 1 : 0)) / 2;
  for (size_t b = 0; b < num_branches; ++b) {
    DATACUBE_ASSIGN_OR_RETURN(Value cond, args_[2 * b]->Evaluate(table, row));
    if (cond.is_special() || !cond.bool_value()) continue;
    DATACUBE_ASSIGN_OR_RETURN(Value v, args_[2 * b + 1]->Evaluate(table, row));
    // Widen to the declared output type so column appends stay typed.
    if (v.is_numeric() && output_type_ == DataType::kFloat64) {
      return Value::Float64(v.AsDouble());
    }
    return v;
  }
  if (case_has_else_) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, args_.back()->Evaluate(table, row));
    if (v.is_numeric() && output_type_ == DataType::kFloat64) {
      return Value::Float64(v.AsDouble());
    }
    return v;
  }
  return Value::Null();
}

Status Expr::Bind(const Schema& schema) {
  for (const ExprPtr& arg : args_) {
    DATACUBE_RETURN_IF_ERROR(arg->Bind(schema));
  }
  switch (kind_) {
    case Kind::kLiteral: {
      if (literal_.is_special()) {
        // A bare NULL literal is typed as string; it compares NULL anyway.
        output_type_ = DataType::kString;
      } else {
        DATACUBE_ASSIGN_OR_RETURN(output_type_, literal_.type());
      }
      break;
    }
    case Kind::kColumnRef: {
      std::optional<size_t> idx = schema.FieldIndexIgnoreCase(name_);
      if (!idx.has_value()) {
        return Status::NotFound("unknown column: " + name_);
      }
      column_index_ = *idx;
      output_type_ = schema.field(*idx).type;
      break;
    }
    case Kind::kUnary: {
      DataType in = args_[0]->output_type();
      switch (unary_op_) {
        case UnaryOp::kNeg:
          if (!IsNumeric(in)) {
            return Status::TypeError("unary - requires a numeric operand");
          }
          output_type_ = in;
          break;
        case UnaryOp::kNot:
          if (in != DataType::kBool) {
            return Status::TypeError("NOT requires a boolean operand");
          }
          output_type_ = DataType::kBool;
          break;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          output_type_ = DataType::kBool;
          break;
      }
      break;
    }
    case Kind::kBinary: {
      DataType lhs = args_[0]->output_type();
      DataType rhs = args_[1]->output_type();
      switch (binary_op_) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kMod:
          if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
            return Status::TypeError(std::string("operator ") +
                                     BinaryOpName(binary_op_) +
                                     " requires numeric operands");
          }
          output_type_ =
              (lhs == DataType::kFloat64 || rhs == DataType::kFloat64)
                  ? DataType::kFloat64
                  : DataType::kInt64;
          break;
        case BinaryOp::kDiv:
          if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
            return Status::TypeError("operator / requires numeric operands");
          }
          // SQL engines differ here; we always produce float64 so that
          // percent-of-total style expressions (Section 4) work naturally.
          output_type_ = DataType::kFloat64;
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          bool comparable = lhs == rhs || (IsNumeric(lhs) && IsNumeric(rhs));
          if (!comparable) {
            return Status::TypeError(
                std::string("cannot compare ") + DataTypeName(lhs) + " with " +
                DataTypeName(rhs));
          }
          output_type_ = DataType::kBool;
          break;
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lhs != DataType::kBool || rhs != DataType::kBool) {
            return Status::TypeError("AND/OR require boolean operands");
          }
          output_type_ = DataType::kBool;
          break;
        case BinaryOp::kLike:
          if (lhs != DataType::kString || rhs != DataType::kString) {
            return Status::TypeError("LIKE requires string operands");
          }
          output_type_ = DataType::kBool;
          break;
      }
      break;
    }
    case Kind::kCall: {
      DATACUBE_ASSIGN_OR_RETURN(function_,
                                ScalarFunctionRegistry::Global().Find(name_));
      if (function_->arity != ScalarFunction::kVariadic &&
          static_cast<int>(args_.size()) != function_->arity) {
        return Status::InvalidArgument(
            name_ + " expects " + std::to_string(function_->arity) +
            " arguments, got " + std::to_string(args_.size()));
      }
      std::vector<DataType> arg_types;
      arg_types.reserve(args_.size());
      for (const ExprPtr& arg : args_) arg_types.push_back(arg->output_type());
      DATACUBE_ASSIGN_OR_RETURN(output_type_,
                                function_->result_type(arg_types));
      break;
    }
    case Kind::kCase:
      DATACUBE_RETURN_IF_ERROR(BindCase());
      break;
  }
  bound_ = true;
  return Status::OK();
}

Result<Value> Expr::Evaluate(const Table& table, size_t row) const {
  if (!bound_) return Status::Internal("expression evaluated before Bind()");
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumnRef:
      return table.GetValue(row, column_index_);
    case Kind::kUnary:
      return EvaluateUnary(table, row);
    case Kind::kBinary:
      return EvaluateBinary(table, row);
    case Kind::kCall:
      return EvaluateCall(table, row);
    case Kind::kCase:
      return EvaluateCase(table, row);
  }
  return Status::Internal("corrupt expression kind");
}

Result<Value> Expr::EvaluateUnary(const Table& table, size_t row) const {
  DATACUBE_ASSIGN_OR_RETURN(Value v, args_[0]->Evaluate(table, row));
  switch (unary_op_) {
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
    case UnaryOp::kNeg:
      if (v.is_special()) return v;
      if (v.kind() == Value::Kind::kInt64) {
        return Value::Int64(-v.int64_value());
      }
      return Value::Float64(-v.AsDouble());
    case UnaryOp::kNot:
      if (v.is_special()) return v;
      return Value::Bool(!v.bool_value());
  }
  return Status::Internal("corrupt unary op");
}

Result<Value> Expr::EvaluateBinary(const Table& table, size_t row) const {
  // AND/OR implement SQL three-valued logic, which can short-circuit even
  // around NULL, so they evaluate operands themselves.
  if (binary_op_ == BinaryOp::kAnd || binary_op_ == BinaryOp::kOr) {
    DATACUBE_ASSIGN_OR_RETURN(Value lhs, args_[0]->Evaluate(table, row));
    DATACUBE_ASSIGN_OR_RETURN(Value rhs, args_[1]->Evaluate(table, row));
    bool is_and = binary_op_ == BinaryOp::kAnd;
    auto tri = [](const Value& v) -> int {  // 0=false, 1=true, 2=unknown
      if (v.is_special()) return 2;
      return v.bool_value() ? 1 : 0;
    };
    int a = tri(lhs), b = tri(rhs);
    if (is_and) {
      if (a == 0 || b == 0) return Value::Bool(false);
      if (a == 2 || b == 2) return Value::Null();
      return Value::Bool(true);
    }
    if (a == 1 || b == 1) return Value::Bool(true);
    if (a == 2 || b == 2) return Value::Null();
    return Value::Bool(false);
  }

  DATACUBE_ASSIGN_OR_RETURN(Value lhs, args_[0]->Evaluate(table, row));
  DATACUBE_ASSIGN_OR_RETURN(Value rhs, args_[1]->Evaluate(table, row));
  // NULL/ALL propagate through arithmetic and comparisons: "ALL, like NULL,
  // does not participate" (Section 3.3).
  if (lhs.is_special() || rhs.is_special()) return Value::Null();

  switch (binary_op_) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (output_type_ == DataType::kInt64) {
        int64_t a = lhs.int64_value(), b = rhs.int64_value();
        switch (binary_op_) {
          case BinaryOp::kAdd:
            return Value::Int64(a + b);
          case BinaryOp::kSub:
            return Value::Int64(a - b);
          default:
            return Value::Int64(a * b);
        }
      }
      double a = lhs.AsDouble(), b = rhs.AsDouble();
      switch (binary_op_) {
        case BinaryOp::kAdd:
          return Value::Float64(a + b);
        case BinaryOp::kSub:
          return Value::Float64(a - b);
        default:
          return Value::Float64(a * b);
      }
    }
    case BinaryOp::kDiv: {
      double b = rhs.AsDouble();
      if (b == 0.0) return Value::Null();  // SQL: division by zero -> NULL here
      return Value::Float64(lhs.AsDouble() / b);
    }
    case BinaryOp::kMod: {
      int64_t b = rhs.int64_value();
      if (b == 0) return Value::Null();
      return Value::Int64(lhs.int64_value() % b);
    }
    case BinaryOp::kEq:
      return Value::Bool(lhs.Compare(rhs) == 0);
    case BinaryOp::kNe:
      return Value::Bool(lhs.Compare(rhs) != 0);
    case BinaryOp::kLt:
      return Value::Bool(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return Value::Bool(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return Value::Bool(lhs.Compare(rhs) >= 0);
    case BinaryOp::kLike:
      return Value::Bool(LikeMatch(lhs.string_value(), rhs.string_value()));
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return Status::Internal("corrupt binary op");
}

Result<Value> Expr::EvaluateCall(const Table& table, size_t row) const {
  std::vector<Value> argv;
  argv.reserve(args_.size());
  bool any_null = false, any_all = false;
  for (const ExprPtr& arg : args_) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, arg->Evaluate(table, row));
    any_null |= v.is_null();
    any_all |= v.is_all();
    argv.push_back(std::move(v));
  }
  if (!function_->handles_special) {
    if (any_all) return Value::All();  // ALL maps through grouping functions
    if (any_null) return Value::Null();
  }
  return function_->eval(argv);
}

Result<std::vector<Value>> Expr::EvaluateAll(const Table& table) const {
  if (!bound_) return Status::Internal("expression evaluated before Bind()");
  std::vector<Value> out;
  out.reserve(table.num_rows());
  if (kind_ == Kind::kColumnRef) {
    // Plain column reference: bulk-read the column, skipping the per-row
    // dispatch and Result round-trip.
    table.column(column_index_).MaterializeValues(&out);
    return out;
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, Evaluate(table, r));
    out.push_back(std::move(v));
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.kind() == Value::Kind::kString
                 ? "'" + literal_.ToString() + "'"
                 : literal_.ToString();
    case Kind::kColumnRef:
      return name_;
    case Kind::kUnary:
      switch (unary_op_) {
        case UnaryOp::kNeg:
          return "-" + args_[0]->ToString();
        case UnaryOp::kNot:
          return "NOT " + args_[0]->ToString();
        case UnaryOp::kIsNull:
          return args_[0]->ToString() + " IS NULL";
        case UnaryOp::kIsNotNull:
          return args_[0]->ToString() + " IS NOT NULL";
      }
      return "?";
    case Kind::kBinary:
      return "(" + args_[0]->ToString() + " " + BinaryOpName(binary_op_) + " " +
             args_[1]->ToString() + ")";
    case Kind::kCall: {
      std::string s = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) s += ", ";
        s += args_[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kCase: {
      std::string s = "CASE";
      size_t num_branches = (args_.size() - (case_has_else_ ? 1 : 0)) / 2;
      for (size_t b = 0; b < num_branches; ++b) {
        s += " WHEN " + args_[2 * b]->ToString() + " THEN " +
             args_[2 * b + 1]->ToString();
      }
      if (case_has_else_) s += " ELSE " + args_.back()->ToString();
      return s + " END";
    }
  }
  return "?";
}

}  // namespace datacube
