#ifndef DATACUBE_EXPR_SCALAR_FUNCTION_H_
#define DATACUBE_EXPR_SCALAR_FUNCTION_H_

#include <functional>
#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"

namespace datacube {

/// A registered scalar function, usable in expressions and as a grouping
/// function (the paper's Section 2 histogram construct: "GROUP BY Day(Time)",
/// "GROUP BY Nation(Latitude, Longitude)").
struct ScalarFunction {
  std::string name;
  /// Fixed arity; kVariadic accepts any count >= 1.
  int arity = 1;
  static constexpr int kVariadic = -1;
  /// Result type given argument types.
  std::function<Result<DataType>(const std::vector<DataType>&)> result_type;
  /// Evaluation over concrete (non-NULL, non-ALL) argument values. NULL/ALL
  /// propagation is handled by the expression evaluator before this is
  /// called, except when `handles_special` is set.
  std::function<Result<Value>(const std::vector<Value>&)> eval;
  /// If true, the function receives NULL/ALL arguments verbatim (e.g.
  /// COALESCE, GROUPING-style predicates).
  bool handles_special = false;
};

/// Process-wide registry of scalar functions. Lookup is case-insensitive.
/// Built-in functions (date parts, Nation/Continent geography, math, string,
/// conditional) are registered on first access; users may add their own.
class ScalarFunctionRegistry {
 public:
  /// The singleton registry, with built-ins pre-registered.
  static ScalarFunctionRegistry& Global();

  /// Registers `fn`; fails if the (case-folded) name is taken.
  Status Register(ScalarFunction fn);

  /// Looks up by case-insensitive name.
  Result<const ScalarFunction*> Find(const std::string& name) const;

  /// Names of all registered functions (sorted).
  std::vector<std::string> Names() const;

 private:
  ScalarFunctionRegistry() = default;
  std::vector<ScalarFunction> functions_;
};

/// Registers the library's built-in scalar functions into `registry`.
/// Called automatically by ScalarFunctionRegistry::Global().
void RegisterBuiltinScalarFunctions(ScalarFunctionRegistry& registry);

}  // namespace datacube

#endif  // DATACUBE_EXPR_SCALAR_FUNCTION_H_
