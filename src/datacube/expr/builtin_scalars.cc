#include <cmath>

#include "datacube/common/str_util.h"
#include "datacube/expr/scalar_function.h"

namespace datacube {

namespace {

using TypeVec = std::vector<DataType>;
using ValVec = std::vector<Value>;

Status CheckArgType(const TypeVec& types, size_t i, DataType want,
                    const char* fn) {
  if (types[i] != want) {
    return Status::TypeError(std::string(fn) + ": argument " +
                             std::to_string(i + 1) + " must be " +
                             DataTypeName(want) + ", got " +
                             DataTypeName(types[i]));
  }
  return Status::OK();
}

// --- Date-part functions: the paper's histogram grouping functions ---

void RegisterDateParts(ScalarFunctionRegistry& r) {
  struct Part {
    const char* name;
    int32_t (*fn)(Date);
  };
  static constexpr Part kParts[] = {
      {"year", &DateYear},         {"month", &DateMonth},
      {"day", &DateDay},           {"quarter", &DateQuarter},
      {"week", &DateIsoWeek},      {"weekyear", &DateIsoWeekYear},
      {"weekday", &DateWeekday},
  };
  for (const Part& p : kParts) {
    ScalarFunction fn;
    fn.name = p.name;
    fn.arity = 1;
    auto* impl = p.fn;
    const std::string fname = p.name;
    fn.result_type = [fname](const TypeVec& types) -> Result<DataType> {
      DATACUBE_RETURN_IF_ERROR(
          CheckArgType(types, 0, DataType::kDate, fname.c_str()));
      return DataType::kInt64;
    };
    fn.eval = [impl](const ValVec& args) -> Result<Value> {
      return Value::Int64(impl(args[0].date_value()));
    };
    (void)r.Register(std::move(fn));
  }

  ScalarFunction weekend;
  weekend.name = "isweekend";
  weekend.arity = 1;
  weekend.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kDate, "isweekend"));
    return DataType::kBool;
  };
  weekend.eval = [](const ValVec& args) -> Result<Value> {
    return Value::Bool(DateIsWeekend(args[0].date_value()));
  };
  (void)r.Register(std::move(weekend));

  ScalarFunction mkdate;
  mkdate.name = "date";
  mkdate.arity = 1;
  mkdate.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(CheckArgType(types, 0, DataType::kString, "date"));
    return DataType::kDate;
  };
  mkdate.eval = [](const ValVec& args) -> Result<Value> {
    DATACUBE_ASSIGN_OR_RETURN(Date d, ParseDate(args[0].string_value()));
    return Value::FromDate(d);
  };
  (void)r.Register(std::move(mkdate));
}

// --- Geography: Nation(lat, lon) and Continent(nation) ---
//
// The paper's Section 2 example groups weather observations with a Nation()
// function "mapping latitude and longitude into the name of the country
// containing that location". We implement a coarse bounding-box gazetteer —
// enough to exercise the code path and reproduce Table 7 — not a GIS.

struct NationBox {
  const char* name;
  const char* continent;
  double lat_min, lat_max, lon_min, lon_max;
};

// Coarse, non-overlapping-enough boxes; first match wins.
constexpr NationBox kNations[] = {
    {"USA", "North America", 24.5, 49.5, -125.0, -66.0},
    {"Canada", "North America", 49.5, 72.0, -141.0, -52.0},
    {"Mexico", "North America", 14.5, 24.5, -118.0, -86.0},
    {"Brazil", "South America", -34.0, 5.0, -74.0, -34.0},
    {"UK", "Europe", 49.9, 59.5, -8.0, 2.0},
    {"France", "Europe", 42.0, 51.5, -5.0, 8.0},
    {"Germany", "Europe", 47.0, 55.0, 6.0, 15.0},
    {"India", "Asia", 8.0, 33.0, 68.0, 89.0},
    {"China", "Asia", 21.0, 53.0, 97.0, 125.0},
    {"Japan", "Asia", 30.0, 45.5, 129.0, 146.0},
    {"Australia", "Oceania", -44.0, -10.0, 112.0, 154.0},
    {"Egypt", "Africa", 22.0, 31.7, 25.0, 36.0},
};

void RegisterGeo(ScalarFunctionRegistry& r) {
  ScalarFunction nation;
  nation.name = "nation";
  nation.arity = 2;
  nation.result_type = [](const TypeVec& types) -> Result<DataType> {
    if (!IsNumeric(types[0]) || !IsNumeric(types[1])) {
      return Status::TypeError("nation(lat, lon) requires numeric arguments");
    }
    return DataType::kString;
  };
  nation.eval = [](const ValVec& args) -> Result<Value> {
    double lat = args[0].AsDouble(), lon = args[1].AsDouble();
    for (const NationBox& box : kNations) {
      if (lat >= box.lat_min && lat <= box.lat_max && lon >= box.lon_min &&
          lon <= box.lon_max) {
        return Value::String(box.name);
      }
    }
    return Value::Null();  // open ocean / unmapped
  };
  (void)r.Register(std::move(nation));

  ScalarFunction continent;
  continent.name = "continent";
  continent.arity = 1;
  continent.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kString, "continent"));
    return DataType::kString;
  };
  continent.eval = [](const ValVec& args) -> Result<Value> {
    for (const NationBox& box : kNations) {
      if (EqualsIgnoreCase(args[0].string_value(), box.name)) {
        return Value::String(box.continent);
      }
    }
    return Value::Null();
  };
  (void)r.Register(std::move(continent));
}

// --- Numeric bucketing for histograms ---

void RegisterBucket(ScalarFunctionRegistry& r) {
  // bucket(x, width): floor(x / width) * width — the canonical histogram
  // category function for "aggregation over computed categories".
  ScalarFunction bucket;
  bucket.name = "bucket";
  bucket.arity = 2;
  bucket.result_type = [](const TypeVec& types) -> Result<DataType> {
    if (!IsNumeric(types[0]) || !IsNumeric(types[1])) {
      return Status::TypeError("bucket(x, width) requires numeric arguments");
    }
    return DataType::kFloat64;
  };
  bucket.eval = [](const ValVec& args) -> Result<Value> {
    double width = args[1].AsDouble();
    if (width <= 0) return Status::InvalidArgument("bucket width must be > 0");
    return Value::Float64(std::floor(args[0].AsDouble() / width) * width);
  };
  (void)r.Register(std::move(bucket));
}

// --- Math ---

void RegisterMath(ScalarFunctionRegistry& r) {
  struct MathFn {
    const char* name;
    double (*fn)(double);
  };
  static constexpr MathFn kFns[] = {
      {"sqrt", [](double x) { return std::sqrt(x); }},
      {"ln", [](double x) { return std::log(x); }},
      {"exp", [](double x) { return std::exp(x); }},
      {"floor", [](double x) { return std::floor(x); }},
      {"ceil", [](double x) { return std::ceil(x); }},
      {"round", [](double x) { return std::round(x); }},
  };
  for (const MathFn& m : kFns) {
    ScalarFunction fn;
    fn.name = m.name;
    fn.arity = 1;
    const std::string fname = m.name;
    fn.result_type = [fname](const TypeVec& types) -> Result<DataType> {
      if (!IsNumeric(types[0])) {
        return Status::TypeError(fname + " requires a numeric argument");
      }
      return DataType::kFloat64;
    };
    auto* impl = m.fn;
    fn.eval = [impl](const ValVec& args) -> Result<Value> {
      return Value::Float64(impl(args[0].AsDouble()));
    };
    (void)r.Register(std::move(fn));
  }

  ScalarFunction abs_fn;
  abs_fn.name = "abs";
  abs_fn.arity = 1;
  abs_fn.result_type = [](const TypeVec& types) -> Result<DataType> {
    if (!IsNumeric(types[0])) {
      return Status::TypeError("abs requires a numeric argument");
    }
    return types[0];
  };
  abs_fn.eval = [](const ValVec& args) -> Result<Value> {
    if (args[0].kind() == Value::Kind::kInt64) {
      return Value::Int64(std::llabs(args[0].int64_value()));
    }
    return Value::Float64(std::fabs(args[0].AsDouble()));
  };
  (void)r.Register(std::move(abs_fn));
}

// --- Strings ---

void RegisterStrings(ScalarFunctionRegistry& r) {
  ScalarFunction upper;
  upper.name = "upper";
  upper.arity = 1;
  upper.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kString, "upper"));
    return DataType::kString;
  };
  upper.eval = [](const ValVec& args) -> Result<Value> {
    return Value::String(ToUpper(args[0].string_value()));
  };
  (void)r.Register(std::move(upper));

  ScalarFunction lower;
  lower.name = "lower";
  lower.arity = 1;
  lower.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kString, "lower"));
    return DataType::kString;
  };
  lower.eval = [](const ValVec& args) -> Result<Value> {
    return Value::String(ToLower(args[0].string_value()));
  };
  (void)r.Register(std::move(lower));

  ScalarFunction length;
  length.name = "length";
  length.arity = 1;
  length.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kString, "length"));
    return DataType::kInt64;
  };
  length.eval = [](const ValVec& args) -> Result<Value> {
    return Value::Int64(static_cast<int64_t>(args[0].string_value().size()));
  };
  (void)r.Register(std::move(length));

  ScalarFunction concat;
  concat.name = "concat";
  concat.arity = ScalarFunction::kVariadic;
  concat.result_type = [](const TypeVec&) -> Result<DataType> {
    return DataType::kString;
  };
  concat.eval = [](const ValVec& args) -> Result<Value> {
    std::string out;
    for (const Value& v : args) out += v.ToString();
    return Value::String(std::move(out));
  };
  (void)r.Register(std::move(concat));

  // substr(s, start[1-based], len)
  ScalarFunction substr;
  substr.name = "substr";
  substr.arity = 3;
  substr.result_type = [](const TypeVec& types) -> Result<DataType> {
    DATACUBE_RETURN_IF_ERROR(
        CheckArgType(types, 0, DataType::kString, "substr"));
    return DataType::kString;
  };
  substr.eval = [](const ValVec& args) -> Result<Value> {
    const std::string& s = args[0].string_value();
    int64_t start = args[1].int64_value();
    int64_t len = args[2].int64_value();
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size() || len <= 0) {
      return Value::String("");
    }
    return Value::String(s.substr(start - 1, len));
  };
  (void)r.Register(std::move(substr));
}

// --- Conditionals (these see NULL/ALL verbatim) ---

void RegisterConditionals(ScalarFunctionRegistry& r) {
  ScalarFunction coalesce;
  coalesce.name = "coalesce";
  coalesce.arity = ScalarFunction::kVariadic;
  coalesce.handles_special = true;
  coalesce.result_type = [](const TypeVec& types) -> Result<DataType> {
    return types.empty() ? DataType::kString : types[0];
  };
  coalesce.eval = [](const ValVec& args) -> Result<Value> {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  };
  (void)r.Register(std::move(coalesce));

  // if(cond, then, else)
  ScalarFunction iff;
  iff.name = "if";
  iff.arity = 3;
  iff.handles_special = true;
  iff.result_type = [](const TypeVec& types) -> Result<DataType> {
    if (types[0] != DataType::kBool) {
      return Status::TypeError("if: condition must be boolean");
    }
    if (types[1] != types[2]) {
      return Status::TypeError("if: branches must have the same type");
    }
    return types[1];
  };
  iff.eval = [](const ValVec& args) -> Result<Value> {
    if (args[0].is_special()) return Value::Null();
    return args[0].bool_value() ? args[1] : args[2];
  };
  (void)r.Register(std::move(iff));
}

}  // namespace

void RegisterBuiltinScalarFunctions(ScalarFunctionRegistry& registry) {
  RegisterDateParts(registry);
  RegisterGeo(registry);
  RegisterBucket(registry);
  RegisterMath(registry);
  RegisterStrings(registry);
  RegisterConditionals(registry);
}

}  // namespace datacube
