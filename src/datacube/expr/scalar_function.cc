#include "datacube/expr/scalar_function.h"

#include <algorithm>

#include "datacube/common/str_util.h"

namespace datacube {

ScalarFunctionRegistry& ScalarFunctionRegistry::Global() {
  static ScalarFunctionRegistry* registry = [] {
    auto* r = new ScalarFunctionRegistry();
    RegisterBuiltinScalarFunctions(*r);
    return r;
  }();
  return *registry;
}

Status ScalarFunctionRegistry::Register(ScalarFunction fn) {
  for (const ScalarFunction& existing : functions_) {
    if (EqualsIgnoreCase(existing.name, fn.name)) {
      return Status::AlreadyExists("scalar function already registered: " +
                                   fn.name);
    }
  }
  functions_.push_back(std::move(fn));
  return Status::OK();
}

Result<const ScalarFunction*> ScalarFunctionRegistry::Find(
    const std::string& name) const {
  for (const ScalarFunction& fn : functions_) {
    if (EqualsIgnoreCase(fn.name, name)) return &fn;
  }
  return Status::NotFound("no scalar function named " + name);
}

std::vector<std::string> ScalarFunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const ScalarFunction& fn : functions_) names.push_back(fn.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace datacube
