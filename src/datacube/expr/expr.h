#ifndef DATACUBE_EXPR_EXPR_H_
#define DATACUBE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"
#include "datacube/expr/scalar_function.h"
#include "datacube/table/table.h"

namespace datacube {

class Expr;
/// Shared expression handle. Expressions are immutable after Bind().
using ExprPtr = std::shared_ptr<Expr>;

/// Binary operators. Arithmetic yields numerics (/, always float64);
/// comparisons and logical operators yield bool with SQL three-valued logic
/// (NULL AND false = false, NULL OR true = true, otherwise NULL propagates).
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  /// SQL LIKE with % (any run) and _ (any char) wildcards; both operands
  /// must be strings.
  kLike,
};

/// Unary operators.
enum class UnaryOp {
  kNeg,
  kNot,
  kIsNull,
  kIsNotNull,
};

/// An expression tree node: literal, column reference, unary/binary
/// operation, or scalar function call.
///
/// Lifecycle: build the tree (Column/Lit/Binary/...), call Bind(schema) once
/// to resolve column names and check types, then Evaluate(table, row) any
/// number of times.
class Expr {
 public:
  enum class Kind { kLiteral, kColumnRef, kUnary, kBinary, kCall, kCase };

  /// --- Factories ---
  static ExprPtr Lit(Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  /// Scalar function call by registry name, e.g. Call("day", {Column("Time")}).
  static ExprPtr Call(std::string function, std::vector<ExprPtr> args);
  /// SQL searched CASE: WHEN/THEN pairs evaluated in order, optional ELSE
  /// (NULL when absent). Branch result types must agree (numerics mix to
  /// float64). Stored in args() as [when1, then1, ..., [else]];
  /// case_has_else() reports whether the trailing ELSE is present.
  static ExprPtr Case(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                      ExprPtr else_expr = nullptr);

  Kind kind() const { return kind_; }

  /// Resolves column references against `schema` and computes the output
  /// type. Must be called (and succeed) before Evaluate.
  Status Bind(const Schema& schema);

  /// Deep copy: the clone shares no nodes with this tree, so Bind on one
  /// never touches memory the other reads. Bind caches are copied, so a
  /// bound tree clones to a bound tree.
  ExprPtr Clone() const;

  /// Output type; valid after Bind.
  DataType output_type() const { return output_type_; }

  /// Evaluates this expression on row `row` of `table` (which must have the
  /// schema passed to Bind).
  Result<Value> Evaluate(const Table& table, size_t row) const;

  /// Evaluates over every row, producing a column vector.
  Result<std::vector<Value>> EvaluateAll(const Table& table) const;

  /// Printable form, e.g. "day(Time)" or "(a + b)".
  std::string ToString() const;

  /// Column name this expression references, if it is a plain column ref.
  const std::string* AsColumnName() const;

  /// For kColumnRef after a successful Bind: the referenced column's index.
  size_t column_index() const { return column_index_; }

  /// For kCall: function name. For kColumnRef: column name.
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  const Value& literal() const { return literal_; }
  BinaryOp binary_op() const { return binary_op_; }
  UnaryOp unary_op() const { return unary_op_; }
  bool case_has_else() const { return case_has_else_; }

 private:
  Expr() = default;

  Result<Value> EvaluateUnary(const Table& table, size_t row) const;
  Result<Value> EvaluateBinary(const Table& table, size_t row) const;
  Result<Value> EvaluateCall(const Table& table, size_t row) const;
  Result<Value> EvaluateCase(const Table& table, size_t row) const;
  Status BindCase();

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  std::string name_;            // column name or function name
  size_t column_index_ = 0;     // resolved by Bind for kColumnRef
  UnaryOp unary_op_ = UnaryOp::kNeg;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  std::vector<ExprPtr> args_;   // operands / call arguments
  const ScalarFunction* function_ = nullptr;  // resolved by Bind for kCall
  DataType output_type_ = DataType::kInt64;
  bool case_has_else_ = false;
  bool bound_ = false;
};

/// Name of a binary operator as it appears in SQL ("+", "<=", "AND", ...).
const char* BinaryOpName(BinaryOp op);

}  // namespace datacube

#endif  // DATACUBE_EXPR_EXPR_H_
