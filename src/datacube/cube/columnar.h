#ifndef DATACUBE_CUBE_COLUMNAR_H_
#define DATACUBE_CUBE_COLUMNAR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "datacube/cube/cube_internal.h"
#include "datacube/cube/key_codec.h"

// The columnar execution core: encoded group keys (KeyCodec), an
// open-addressing flat hash table of cells (CellStore), and fixed-slot
// aggregate states living inline in per-store arenas (StateLayout /
// CellArena). Every cube algorithm has a columnar implementation here; the
// legacy Value-vector CellMap path in cube_internal.h is kept behind
// CubeOptions::use_legacy_cellmap as the differential-oracle escape hatch.

namespace datacube {
namespace cube_internal {

/// Where each aggregate's scratchpad lives inside a cell block: inline
/// (state_size() > 0 — the fixed-slot protocol) or a compatibility slot
/// holding a heap AggStatePtr.
struct StateSlot {
  size_t offset = 0;
  bool is_inline = false;
  /// Byte delta from the slot address to its AggState view, cached once so
  /// hot loops skip the virtual StateAt per row.
  ptrdiff_t adjust = 0;
};

/// Cell block layout: a CellHeader at offset 0 followed by one aligned
/// slot per aggregate. Blocks are uniform-size, so a free list can recycle
/// them.
struct CellHeader {
  int64_t count = 0;
  size_t repr_row = 0;
  bool has_repr = false;
};

struct StateLayout {
  std::vector<StateSlot> slots;
  size_t block_size = 0;
  size_t block_align = alignof(CellHeader);
  /// Number of compatibility (heap AggStatePtr) slots — 0 exactly when
  /// every aggregate is inline, the zero-per-cell-heap-allocation case.
  size_t num_compat = 0;

  static StateLayout Build(const std::vector<AggregateFunctionPtr>& aggs);
};

/// Uniform-size block allocator: bump allocation out of chunked slabs
/// plus a free list of erased cells. Shared between stores when cells
/// migrate (the dense-array path), hence the shared_ptr handle.
class CellArena {
 public:
  CellArena(size_t block_size, size_t align);

  char* Alloc();
  void Free(char* block);
  /// Total bytes reserved in slabs (the arena-bytes obs counter).
  size_t bytes() const { return bytes_; }

 private:
  size_t block_size_;
  size_t blocks_per_chunk_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* next_ = nullptr;
  size_t left_in_chunk_ = 0;
  char* free_list_ = nullptr;
  size_t bytes_ = 0;
};

using CellArenaPtr = std::shared_ptr<CellArena>;

struct ColumnarContext;

/// Hash of a packed key — the one hash shared by CellStore probing (low
/// bits pick the slot) and the parallel path's radix partitioner (high bits
/// pick the partition), so the two stay uncorrelated.
uint64_t HashPackedKey(const uint64_t* key, size_t words);

/// Open-addressing flat hash table from packed keys to cell blocks:
/// power-of-two capacity, linear probing, backward-shift deletion (no
/// tombstones), ~0.7 load factor. Keys live in one strided uint64_t
/// array; blocks come from the (possibly shared) arena.
class CellStore {
 public:
  struct Stats {
    uint64_t probes = 0;
    uint64_t max_probe = 0;
    uint64_t rehashes = 0;
    uint64_t heap_state_allocs = 0;
  };

  CellStore() = default;
  explicit CellStore(const ColumnarContext* cc, CellArenaPtr arena = nullptr);
  CellStore(CellStore&&) noexcept;
  CellStore& operator=(CellStore&&) noexcept;
  CellStore(const CellStore&) = delete;
  CellStore& operator=(const CellStore&) = delete;
  ~CellStore();

  size_t size() const { return size_; }
  size_t words() const { return words_; }

  /// Block for `key`, or nullptr.
  char* Find(const uint64_t* key) const;

  /// Block for `key`, creating (header + InitAt per slot) if absent.
  char* FindOrInsert(const uint64_t* key, bool* inserted = nullptr);

  /// Inserts a deep copy of `src_block` (from any store sharing the same
  /// layout) under `key`, which must be absent.
  char* InsertClone(const uint64_t* key, const char* src_block);

  /// Adopts an existing block (allocated from this store's arena) under
  /// `key`, which must be absent.
  void InsertAdopt(const uint64_t* key, char* block);

  /// Destroys the cell and backward-shifts the probe chain. Returns false
  /// if the key is absent.
  bool Erase(const uint64_t* key);

  /// Forgets every cell WITHOUT destroying its block — the caller has taken
  /// ownership (the re-key-after-Relayout path, where blocks move to a
  /// fresh store under new keys).
  void ReleaseAll();

  /// Pre-sizes the table so inserting up to `cells` cells needs no rehash.
  void Reserve(size_t cells);

  /// Batched FindOrInsert: resolves `n` packed keys (strided by words())
  /// to cell blocks, out_blocks[i] = block of keys[i*words..]. Hashes every
  /// key up front in an auto-vectorizable sweep (the hash is
  /// capacity-independent, so it survives rehashes), then probes with the
  /// cached hashes while software-prefetching the slot a few keys ahead.
  /// Growth schedule and probe counters match n scalar FindOrInsert calls
  /// row for row.
  void BatchUpsert(const uint64_t* keys, size_t n, char** out_blocks);

  /// Takes every cell of `other` — whose key set must be disjoint from this
  /// store's, as radix-partitioned shards are — by adopting its blocks in
  /// place and retaining its arena(s), so no aggregate state is cloned.
  /// Folds other's probe counters in; `other` is left empty.
  void AbsorbDisjoint(CellStore&& other);

  /// Arenas kept alive for adopted foreign blocks (AbsorbDisjoint).
  const std::vector<CellArenaPtr>& retained_arenas() const {
    return retained_;
  }

  /// f(const uint64_t* key, char* block) for every cell.
  template <typename F>
  void ForEach(F f) const {
    for (size_t i = 0; i < cap_; ++i) {
      if (blocks_[i] != nullptr) f(keys_.data() + i * words_, blocks_[i]);
    }
  }

  const Stats& stats() const { return stats_; }
  Stats& MutableStats() { return stats_; }
  const CellArenaPtr& arena() const { return arena_; }

 private:
  size_t ProbeFor(const uint64_t* key, bool* found) const;
  size_t ProbeWithHash(uint64_t hash, const uint64_t* key, bool* found) const;
  char* InsertAtSlot(size_t slot, const uint64_t* key);
  void Grow();
  void GrowTo(size_t new_cap);
  uint64_t HashKey(const uint64_t* key) const;
  bool KeyEquals(size_t slot, const uint64_t* key) const {
    return std::memcmp(keys_.data() + slot * words_, key,
                       words_ * sizeof(uint64_t)) == 0;
  }
  void DestroyBlock(char* block);

  const ColumnarContext* cc_ = nullptr;
  CellArenaPtr arena_;
  std::vector<CellArenaPtr> retained_;
  std::vector<uint64_t> keys_;
  std::vector<char*> blocks_;
  size_t cap_ = 0;
  size_t size_ = 0;
  size_t words_ = 1;
  mutable Stats stats_;
  /// BatchUpsert's hash cache, kept across calls to avoid reallocation.
  std::vector<uint64_t> batch_hash_;
};

/// One CellStore per grouping set, parallel to CubeContext::sets.
using SetStores = std::vector<CellStore>;

/// The columnar view of a built CubeContext: the key codec, the state
/// layout, and every row's grouping key packed once up front. All cell
/// operations mirror CubeContext's (IterRow/MergeCell/...) with identical
/// aggregate semantics — the same virtual Iter/Merge/Remove/Final calls on
/// the same state types, just addressed through slots instead of
/// AggStatePtrs.
struct ColumnarContext {
  const CubeContext* ctx = nullptr;
  KeyCodec codec;
  StateLayout layout;
  /// row_keys[row * words .. ) = packed full-set key of `row`.
  std::vector<uint64_t> row_keys;
  size_t words = 1;

  /// Resolved batch-kernel gate. BuildColumnarContext seeds it from the
  /// DATACUBE_SCALAR_KERNELS environment hatch; ExecuteCube overrides it
  /// from CubeOptions::use_batch_kernels. When false every scan stays on
  /// the per-row IterRow path.
  bool use_batch = true;
  /// Prebuilt per-aggregate argument descriptors for IterBatch (typed
  /// buffers + state codes where the argument is a plain column reference,
  /// materialized Values always).
  std::vector<std::vector<AggBatchArg>> batch_args;

  const uint64_t* RowKey(size_t row) const {
    return row_keys.data() + row * words;
  }

  CellStore MakeStore(CellArenaPtr arena = nullptr) const {
    return CellStore(this, std::move(arena));
  }

  static CellHeader* Header(char* block) {
    return reinterpret_cast<CellHeader*>(block);
  }
  static const CellHeader* Header(const char* block) {
    return reinterpret_cast<const CellHeader*>(block);
  }
  AggState* StateOf(char* block, size_t a) const {
    const StateSlot& s = layout.slots[a];
    char* slot = block + s.offset;
    if (s.is_inline) return reinterpret_cast<AggState*>(slot + s.adjust);
    return reinterpret_cast<AggStatePtr*>(slot)->get();
  }
  const AggState* StateOf(const char* block, size_t a) const {
    return StateOf(const_cast<char*>(block), a);
  }

  /// Re-encodes every row key under the codec's current layout (after
  /// dictionary growth forced a Relayout).
  void RepackRowKeys();

  /// Allocates and initializes a fresh cell block straight from `arena`
  /// (the dense-array fill path, where blocks live outside any store until
  /// they are adopted). Counts compat allocations into `stats` if given.
  char* NewBlock(CellArena& arena, CellStore::Stats* stats) const;

  // Cell operations, mirroring CubeContext::{IterRow,RemoveRow,MergeCell}.
  void IterRow(char* block, size_t row, CubeStats* stats) const;
  Status RemoveRow(char* block, size_t row) const;
  Status MergeCell(char* dst, const char* src, CubeStats* stats) const;

  /// Batched IterRow over n (row, cell) pairs: one header sweep, then one
  /// IterBatch call per aggregate over the whole morsel (scalar Iter
  /// replay for aggregates without a kernel). blocks[i] receives row
  /// `rows ? rows[i] : base + i`; duplicate blocks are expected (rows
  /// sharing a group). Aggregate semantics and iter_calls accounting match
  /// n scalar IterRow calls exactly.
  void BatchIterRows(char* const* blocks, const uint32_t* rows, size_t base,
                     size_t n, CubeStats* stats) const;
};

/// Rows per batched dispatch chunk: big enough to amortize the per-morsel
/// virtual calls, small enough that the group-id and block scratch vectors
/// stay cache-resident (and well under the control-poll interval).
inline constexpr size_t kBatchRows = 2048;

Result<ColumnarContext> BuildColumnarContext(const CubeContext& ctx);

/// Hash-aggregates the input into a flat table of `set` cells — the
/// columnar HashGroupBy.
CellStore FlatGroupBy(const ColumnarContext& cc, GroupingSet set,
                      CubeStats* stats);

// Columnar implementations of every algorithm, mirroring the legacy
// entry points in cube_internal.h (same fallback chains, same
// CubeStats::algorithm_used self-reporting).
Result<SetStores> ColumnarNaive2N(const ColumnarContext& cc, CubeStats* stats);
Result<SetStores> ColumnarUnionGroupBy(const ColumnarContext& cc,
                                       CubeStats* stats);
Result<SetStores> ColumnarCascadeFromCore(const ColumnarContext& cc,
                                          std::optional<CellStore> core,
                                          CubeStats* stats);
Result<SetStores> ColumnarFromCore(const ColumnarContext& cc,
                                   CubeStats* stats);
Result<SetStores> ColumnarArrayCube(const ColumnarContext& cc,
                                    const CubeOptions& options,
                                    CubeStats* stats);
Result<SetStores> ColumnarSortRollup(const ColumnarContext& cc,
                                     CubeStats* stats);
Result<SetStores> ColumnarSortFromCore(const ColumnarContext& cc,
                                       CubeStats* stats);
Result<SetStores> ColumnarParallel(const ColumnarContext& cc,
                                   const CubeOptions& options,
                                   CubeStats* stats);

/// Folds each store's probe/arena counters into `stats` (the
/// EXPLAIN ANALYZE kernel counters).
void FlushStoreStats(const SetStores& stores, CubeStats* stats);

/// Builds the result relation from flat stores — the only place packed
/// keys are decoded back to Values. Mirrors AssembleResult (ALL/NULL
/// marking, decorations, GROUPING columns, empty-grouping-set fix-up).
Result<Table> AssembleColumnarResult(const ColumnarContext& cc,
                                     SetStores& stores, CubeStats* stats);

}  // namespace cube_internal
}  // namespace datacube

#endif  // DATACUBE_CUBE_COLUMNAR_H_
