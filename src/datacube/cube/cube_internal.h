#ifndef DATACUBE_CUBE_CUBE_INTERNAL_H_
#define DATACUBE_CUBE_CUBE_INTERNAL_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "datacube/agg/aggregate.h"
#include "datacube/cube/cube_spec.h"
#include "datacube/table/table.h"

// Internal shared machinery for the cube computation algorithms. Not part of
// the public API; included only by cube/*.cc and white-box tests.

namespace datacube {
namespace cube_internal {

/// One cube cell: a scratchpad per aggregate plus a representative input row
/// (any member of the cell's group) used to evaluate decorations.
struct Cell {
  std::vector<AggStatePtr> states;
  /// Number of base rows contributing to this cell. Maintained by
  /// IterRow/MergeCell and by the maintenance layer, which erases a cell
  /// when its group empties (so the maintained cube equals a recompute).
  int64_t count = 0;
  size_t repr_row = 0;
  bool has_repr = false;
};

/// Cells of one grouping set, keyed by the full-width grouping key with ALL
/// in aggregated-away positions.
using CellMap =
    std::unordered_map<std::vector<Value>, Cell, ValueVectorHash>;

/// One CellMap per grouping set, parallel to CubeContext::sets.
using SetMaps = std::vector<CellMap>;

/// Everything the algorithms need, precomputed once: bound expressions
/// evaluated into key columns and aggregate-argument columns, instantiated
/// aggregate functions, and the normalized grouping-set list.
struct CubeContext {
  const Table* input = nullptr;
  const CubeSpec* spec = nullptr;

  size_t num_keys = 0;
  std::vector<std::string> key_names;
  std::vector<DataType> key_types;
  /// key_columns[k][row] = evaluated k-th grouping expression. May be left
  /// empty for a plain column reference when the caller requested lazy key
  /// materialization (the columnar one-shot path encodes straight from the
  /// table); key_source_columns[k] is set in that case.
  std::vector<std::vector<Value>> key_columns;
  /// key_source_columns[k] = the input column the k-th grouping expression
  /// references, or nullptr when it is a computed expression.
  std::vector<const Column*> key_source_columns;

  std::vector<AggregateFunctionPtr> aggs;
  std::vector<DataType> agg_result_types;
  /// agg_args[a][i][row] = evaluated i-th argument of aggregate a.
  std::vector<std::vector<std::vector<Value>>> agg_args;
  /// agg_source_columns[a][i] = the input column the i-th argument of
  /// aggregate a references, or nullptr for computed expressions. Batch
  /// kernels read the raw typed buffer through this; agg_args stays the
  /// materialized source of truth for every scalar path.
  std::vector<std::vector<const Column*>> agg_source_columns;

  std::vector<GroupingSet> sets;
  /// Index of the full set within `sets`, or -1 if the spec's grouping sets
  /// (GROUPING SETS form) do not include the core.
  int full_set_index = -1;
  bool all_mergeable = true;

  /// Cooperative cancellation for this execution (CubeOptions::control);
  /// set by ExecuteCube, nullptr for uncontrolled executions. Algorithms
  /// poll ControlStatus() at work boundaries.
  const ExecControl* control = nullptr;

  size_t num_rows() const { return input->num_rows(); }

  /// OK, or why the execution must stop (cancelled / deadline exceeded).
  Status ControlStatus() const { return CheckControl(control); }

  /// Cheap interrupted test for inner loops that unwind through a caller's
  /// ControlStatus() check rather than returning a Status themselves.
  bool Interrupted() const {
    return control != nullptr && !control->Check().ok();
  }

  /// Full-width key for `row` under `set` (ALL in ungrouped positions).
  std::vector<Value> MaskedKey(size_t row, GroupingSet set) const;

  /// Projects an existing full-width key onto a coarser set.
  std::vector<Value> ProjectKey(const std::vector<Value>& key,
                                GroupingSet set) const;

  /// Fresh cell with Init'd scratchpads.
  Cell NewCell() const;

  /// Folds input row `row` into `cell` (one Iter per aggregate).
  void IterRow(Cell* cell, size_t row, CubeStats* stats) const;

  /// Un-applies row `row` from `cell` (maintenance path).
  Status RemoveRow(Cell* cell, size_t row) const;

  /// Merges src's scratchpads into dst's (Iter_super cascade).
  Status MergeCell(Cell* dst, const Cell& src, CubeStats* stats) const;

  /// Deep copy of a cell.
  Cell CloneCell(const Cell& cell) const;
};

/// Evaluates and validates `spec` against `input`. With
/// `materialize_ref_keys` false, grouping expressions that are plain column
/// references skip EvaluateAll — their key_columns entry stays empty and
/// key_source_columns points at the table column instead. Only the columnar
/// one-shot path may request this; the legacy algorithms and the
/// maintenance contexts index key_columns per row.
Result<CubeContext> BuildCubeContext(const Table& input, const CubeSpec& spec,
                                     bool materialize_ref_keys = true);

/// Hash-aggregates the input into cells of `set`. The shared primitive
/// behind UnionGroupBy, FromCore's core computation, and fallbacks.
/// Increments stats->input_scans by one.
CellMap HashGroupBy(const CubeContext& ctx, GroupingSet set, CubeStats* stats);

/// Computation plan over the grouping-set lattice: each node is computed
/// either from base data (parent == -1) or by merging a finer, already
/// computed node's cells (the smallest-parent rule of Section 5: "aggregate
/// the smaller of the two").
struct LatticePlan {
  struct Node {
    GroupingSet set = 0;
    int parent = -1;
    double est_cells = 1.0;
  };
  /// In computation order (parents strictly before children).
  std::vector<Node> nodes;
};

/// Parent-choice policy for the lattice plan. The paper's rule is
/// kSmallestParent ("the algorithm will be most efficient if it aggregates
/// the smaller of the two"); kLargestParent always folds from the biggest
/// available parent (effectively the core) and exists as the ablation
/// baseline for that claim.
enum class ParentPolicy { kSmallestParent, kLargestParent };

/// Builds the lattice plan. `column_cardinalities[k]` is the number of
/// distinct values of grouping column k (used for Section 5's "pick the
/// * with the smallest C_i" estimate).
LatticePlan PlanLattice(const std::vector<GroupingSet>& sets,
                        const std::vector<size_t>& column_cardinalities,
                        ParentPolicy policy = ParentPolicy::kSmallestParent);

/// Distinct-value count of each key column of `ctx`.
std::vector<size_t> KeyCardinalities(const CubeContext& ctx);

/// Builds the result relation from per-set cell maps (ALL/NULL marking,
/// decorations, GROUPING columns, aggregate finalization). Shared by the
/// one-shot operator and MaterializedCube. Reads the cells' scratchpads but
/// does not consume them.
Result<Table> AssembleResult(const CubeContext& ctx, SetMaps& maps,
                             CubeStats* stats);

// Per-algorithm entry points. Each fills one CellMap per ctx.sets entry.
Result<SetMaps> ComputeNaive2N(const CubeContext& ctx, CubeStats* stats);
/// Lattice cascade seeded with an optional precomputed core (see
/// from_core.cc); exposed for the parallel path.
Result<SetMaps> CascadeFromCore(const CubeContext& ctx,
                                std::optional<CellMap> core, CubeStats* stats);
Result<SetMaps> ComputeUnionGroupBy(const CubeContext& ctx, CubeStats* stats);
Result<SetMaps> ComputeFromCore(const CubeContext& ctx, CubeStats* stats);
Result<SetMaps> ComputeArrayCube(const CubeContext& ctx,
                                 const CubeOptions& options, CubeStats* stats);
Result<SetMaps> ComputeSortRollup(const CubeContext& ctx, CubeStats* stats);
Result<SetMaps> ComputeSortFromCore(const CubeContext& ctx, CubeStats* stats);
Result<SetMaps> ComputeParallel(const CubeContext& ctx,
                                const CubeOptions& options, CubeStats* stats);

}  // namespace cube_internal
}  // namespace datacube

#endif  // DATACUBE_CUBE_CUBE_INTERNAL_H_
