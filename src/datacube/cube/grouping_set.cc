#include "datacube/cube/grouping_set.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace datacube {

GroupingSet FullSet(size_t n) {
  assert(n < 64);
  return n == 0 ? 0 : ((1ULL << n) - 1);
}

int PopCount(GroupingSet set) { return std::popcount(set); }

std::string GroupingSetToString(GroupingSet set,
                                const std::vector<std::string>& names) {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < names.size(); ++i) {
    if (!IsGrouped(set, i)) continue;
    if (!first) out += ", ";
    out += names[i];
    first = false;
  }
  return out + "}";
}

std::vector<GroupingSet> CubeSets(size_t n) {
  assert(n < 64);
  std::vector<GroupingSet> sets;
  sets.reserve(1ULL << n);
  // Emit in descending popcount order starting from the core so downstream
  // code sees parents before children.
  for (GroupingSet s = FullSet(n);; --s) {
    sets.push_back(s);
    if (s == 0) break;
  }
  return NormalizeSets(std::move(sets));
}

std::vector<GroupingSet> RollupSets(size_t n) {
  std::vector<GroupingSet> sets;
  sets.reserve(n + 1);
  for (size_t len = n + 1; len-- > 0;) {
    sets.push_back(FullSet(len));
  }
  return sets;
}

std::vector<GroupingSet> GroupBySets(size_t n) { return {FullSet(n)}; }

std::vector<GroupingSet> CrossProductSets(
    const std::vector<std::vector<GroupingSet>>& parts,
    const std::vector<size_t>& widths) {
  assert(parts.size() == widths.size());
  std::vector<GroupingSet> result = {0};
  size_t shift = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    std::vector<GroupingSet> next;
    next.reserve(result.size() * parts[p].size());
    for (GroupingSet base : result) {
      for (GroupingSet part : parts[p]) {
        next.push_back(base | (part << shift));
      }
    }
    result = std::move(next);
    shift += widths[p];
  }
  return NormalizeSets(std::move(result));
}

std::vector<GroupingSet> ComposeGroupingSets(size_t num_group_by,
                                             size_t num_rollup,
                                             size_t num_cube) {
  return CrossProductSets(
      {GroupBySets(num_group_by), RollupSets(num_rollup), CubeSets(num_cube)},
      {num_group_by, num_rollup, num_cube});
}

std::vector<GroupingSet> NormalizeSets(std::vector<GroupingSet> sets) {
  std::sort(sets.begin(), sets.end(), [](GroupingSet a, GroupingSet b) {
    int pa = PopCount(a), pb = PopCount(b);
    if (pa != pb) return pa > pb;
    return a > b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return sets;
}

}  // namespace datacube
