#include "datacube/cube/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace datacube {
namespace cube_internal {

namespace {

size_t DefaultThreadCount() {
  const char* env = std::getenv("DATACUBE_THREADS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: queries may still run during static destruction of
  // other translation units, and a joined-at-exit pool would race them.
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  {
    obs::TaskTraceScope trace_scope(task.span);
    task.fn();
  }
  task.group->TaskDone();
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      obs::TaskTraceScope trace_scope(task.span);
      task.fn();
    }
    task.group->TaskDone();
  }
}

TaskGroup::TaskGroup(ThreadPool& pool) : pool_(pool) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  // Capture the spawner's span context here, not at execution time: the
  // task must attach under the span open where it was *spawned*, and the
  // pool thread that runs it has no trace of its own.
  pool_.Enqueue(
      ThreadPool::Task{std::move(fn), this, obs::CurrentSpanContext()});
}

void TaskGroup::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  // Every completion wakes the waiter: tasks spawned by a finishing task
  // must be picked up by the (possibly otherwise idle) waiting caller. The
  // notify happens under the lock on purpose — the waiter may destroy this
  // TaskGroup the instant it observes pending_ == 0, so the notify must not
  // interleave with destruction.
  done_cv_.notify_all();
}

void TaskGroup::Wait() {
  while (true) {
    // Help-first: drain queued tasks (of any group) on this thread instead
    // of sleeping. A task never blocks on another task, so this cannot
    // deadlock, and it is what lets a query request more parallelism than
    // the pool has workers.
    if (pool_.RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) return;
    // Woken on every TaskDone, not only the last: a finishing task may have
    // spawned children that this thread should help run.
    done_cv_.wait(lock);
  }
}

Status ParallelStatusFor(ThreadPool& pool, size_t n,
                         const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(n, Status::OK());
  {
    TaskGroup group(pool);
    for (size_t i = 0; i < n; ++i) {
      group.Spawn([&statuses, &fn, i] { statuses[i] = fn(i); });
    }
    group.Wait();
  }
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

size_t ClampThreads(int requested, size_t num_rows) {
  size_t threads = requested > 0 ? static_cast<size_t>(requested)
                                 : DefaultThreadCount();
  if (threads > 1) {
    threads = std::min(threads, num_rows / kMinRowsPerThread + 1);
  }
  return std::max<size_t>(1, threads);
}

}  // namespace cube_internal
}  // namespace datacube
