#ifndef DATACUBE_CUBE_THREAD_POOL_H_
#define DATACUBE_CUBE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "datacube/common/status.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

class TaskGroup;

/// Process-wide worker pool for parallel cube execution: created lazily,
/// sized once, and reused by every query instead of spawning std::threads
/// per execution. Tasks are submitted through a TaskGroup; a waiting caller
/// drains queued tasks itself, so requesting more parallelism than the pool
/// has workers degrades gracefully (including on a 1-hardware-thread
/// machine), and concurrent queries from many caller threads simply
/// interleave their task batches on the shared workers.
class ThreadPool {
 public:
  /// The shared pool. Sized at first use from DATACUBE_THREADS when set to
  /// a positive integer, else std::thread::hardware_concurrency(), minimum
  /// one worker. Never destroyed (it must outlive any static teardown that
  /// could still run a query).
  static ThreadPool& Global();

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    /// Span context captured at Spawn: the task runs under a TaskTraceScope
    /// so worker-side spans stitch under the spawner's open span. Inactive
    /// (and free) when the spawning thread was not tracing.
    obs::SpanContext span;
  };

  void Enqueue(Task task);
  /// Pops and runs one queued task (of any group) on the calling thread.
  /// Returns false if the queue was empty.
  bool RunOneTask();
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// One batch of related tasks on a ThreadPool (one phase of one query).
/// Spawn() is legal from inside a running task of the same group — the
/// lattice cascade schedules children as their parents finish. Wait()
/// blocks until every spawned task has run, executing queued tasks on the
/// waiting thread meanwhile. Tasks must never block on other tasks.
///
/// Tracing: Spawn captures the spawning thread's obs::SpanContext and each
/// task executes under it, so ScopedSpans opened inside tasks attach to the
/// spawner's trace (assembled per task without locks, stitched under the
/// captured parent span at task completion). Wait() returning guarantees
/// every task's subtree is stitched, which is what makes reading the trace
/// after a phase safe.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  /// Waits for stragglers; prefer an explicit Wait().
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn);
  void Wait();

 private:
  friend class ThreadPool;
  void TaskDone();

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;
};

/// Runs fn(0), ..., fn(n-1) as `n` pool tasks and returns the first non-OK
/// status *by task index* — deterministic regardless of completion order
/// (the per-query-thread path it replaces surfaced whichever error its
/// combine loop happened to reach first).
Status ParallelStatusFor(ThreadPool& pool, size_t n,
                         const std::function<Status(size_t)>& fn);

/// Minimum rows each parallel worker should own before splitting pays for
/// itself; ClampThreads's floor.
inline constexpr size_t kMinRowsPerThread = 1024;

/// Worker count the parallel cube path uses for `requested` threads over
/// `num_rows` input rows — the single home of the clamp that parallel.cc,
/// columnar_algorithms.cc, and the operator's parallel gate used to copy.
/// Non-positive requests resolve to the DATACUBE_THREADS /
/// hardware_concurrency default; tiny inputs clamp so each worker sees at
/// least kMinRowsPerThread rows. A result of 1 means "run serial".
size_t ClampThreads(int requested, size_t num_rows);

}  // namespace cube_internal
}  // namespace datacube

#endif  // DATACUBE_CUBE_THREAD_POOL_H_
