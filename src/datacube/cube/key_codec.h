#ifndef DATACUBE_CUBE_KEY_CODEC_H_
#define DATACUBE_CUBE_KEY_CODEC_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "datacube/common/value.h"
#include "datacube/cube/cube_spec.h"
#include "datacube/table/column.h"

namespace datacube {
namespace cube_internal {

/// One grouping column fed to KeyCodec::Build: either an evaluated Value
/// vector (computed grouping expressions, maintenance contexts) or a typed
/// table column read directly (plain column references — no per-row Value
/// materialization). Exactly one pointer is set.
struct KeyColumnSource {
  const std::vector<Value>* values = nullptr;
  const Column* column = nullptr;
};

/// Dictionary-encodes grouping keys into fixed-width bit-packed words so
/// the aggregation kernel never touches Value vectors: each grouping
/// column gets a per-column dictionary (built once, sorted by the Value
/// total order for determinism) and a bit field inside an array of 64-bit
/// words. Fields never straddle a word boundary; when every field fits in
/// one word (the common case — total code bits <= 64) an encoded key is a
/// single uint64_t, otherwise it is a short word array.
///
/// Reserved codes make the ALL/NULL semantics of Section 3 pure bit
/// arithmetic:
///   code 0 = ALL   — masking a field to zero aggregates the column away,
///                    so MaskedKey is a bitwise AND with a keep-mask;
///   code 1 = NULL  — NULL groups stay distinct from ALL planes;
///   codes 2..C+1   — the column's concrete values, in sorted order.
class KeyCodec {
 public:
  static constexpr uint64_t kAllCode = 0;
  static constexpr uint64_t kNullCode = 1;

  KeyCodec() = default;

  /// Builds dictionaries and the bit layout from evaluated key columns
  /// (CubeContext::key_columns).
  static KeyCodec Build(const std::vector<std::vector<Value>>& key_columns);

  /// Single-pass build from per-column sources. When `row_codes` is
  /// non-null, (*row_codes)[k][row] receives row `row`'s final code in
  /// column `k` — the dictionary hash lookups happen once here instead of
  /// again per row in EncodeRow. Typed column sources are encoded straight
  /// from their buffers (string_view / int64 / canonicalized double keys),
  /// never constructing a Value per row; the resulting dictionaries and
  /// codes are identical to the Value-vector path for the same data.
  static KeyCodec Build(const std::vector<KeyColumnSource>& sources,
                        size_t num_rows,
                        std::vector<std::vector<uint32_t>>* row_codes);

  size_t num_keys() const { return cols_.size(); }
  /// Words per encoded key; 1 is the uint64_t fast path.
  size_t words() const { return words_; }
  bool single_word() const { return words_ == 1; }
  /// Total packed bits across all fields.
  size_t total_bits() const;

  /// Per-column distinct-value counts exactly as the legacy
  /// KeyCardinalities reports them (NULL — and a literal ALL in the data —
  /// count as distinct values; minimum 1), so PlanLattice estimates are
  /// unchanged by encoding.
  std::vector<size_t> Cardinalities() const;

  /// Code for `v` in column `k`, or nullopt if the value is not in the
  /// dictionary (then no cell with this key can exist).
  std::optional<uint64_t> CodeOf(size_t k, const Value& v) const;

  /// Code for `v` in column `k`, growing the dictionary if needed (the
  /// maintenance insert path). After growth, call needs_relayout(): a new
  /// code can outgrow the column's bit field, which invalidates every key
  /// packed under the old layout.
  uint64_t CodeOfOrAdd(size_t k, const Value& v);

  /// True when some column's codes no longer fit its bit field.
  bool needs_relayout() const;

  /// Recomputes field widths/offsets for the current dictionaries. All
  /// previously packed keys are invalid afterwards; re-encode them.
  void Relayout();

  /// Packs row `row` of `key_columns` (full grouping set) into
  /// out[0..words()). Values absent from the dictionary are added.
  void EncodeRow(const std::vector<std::vector<Value>>& key_columns,
                 size_t row, uint64_t* out);

  /// Packs an explicit full-width Value key; returns nullopt if any
  /// grouped value is absent from the dictionary. Positions not in `set`
  /// encode as ALL regardless of their value.
  std::optional<std::vector<uint64_t>> EncodeKey(
      const std::vector<Value>& key, GroupingSet set) const;

  /// Keep-mask for `set`: AND-ing a full key with it zeroes (= ALL) every
  /// aggregated-away field. masks[w] covers word w.
  std::vector<uint64_t> MaskForSet(GroupingSet set) const;

  /// Applies a MaskForSet mask to `n` consecutive packed keys in one
  /// auto-vectorizable sweep: dst[i*words + w] = src[i*words + w] &
  /// mask[w]. `src` and `dst` may alias exactly (in-place) but must not
  /// partially overlap. This is the batched form of the per-key MaskKey
  /// loop the scalar algorithms use.
  static void MaskKeysBatch(const uint64_t* src, size_t n, size_t words,
                            const uint64_t* mask, uint64_t* dst) {
    if (words == 1) {
      const uint64_t m = mask[0];
      for (size_t i = 0; i < n; ++i) dst[i] = src[i] & m;
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t* s = src + i * words;
      uint64_t* d = dst + i * words;
      for (size_t w = 0; w < words; ++w) d[w] = s[w] & mask[w];
    }
  }

  /// Field value of column `k` inside a packed key.
  uint64_t CodeAt(const uint64_t* key, size_t k) const {
    const Column& c = cols_[k];
    return (key[c.word] >> c.shift) & c.field_mask;
  }

  /// ORs `code` into column `k`'s field of a zero-initialized packed key.
  void SetCode(uint64_t* key, size_t k, uint64_t code) const {
    const Column& c = cols_[k];
    key[c.word] |= code << c.shift;
  }

  /// Batched SetCode: ORs codes[i] into column `k`'s field of key i for
  /// `n` consecutive packed keys. The field's word/shift lookup is hoisted
  /// out of the loop, so the single-word common case compiles to one
  /// auto-vectorizable shift-or sweep — this is how BuildColumnarContext
  /// packs every row's key.
  void SetCodesBatch(size_t k, const uint32_t* codes, size_t n,
                     uint64_t* keys, size_t words) const {
    const Column& c = cols_[k];
    const uint32_t shift = c.shift;
    uint64_t* base = keys + c.word;
    if (words == 1) {
      for (size_t i = 0; i < n; ++i) {
        base[i] |= static_cast<uint64_t>(codes[i]) << shift;
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      base[i * words] |= static_cast<uint64_t>(codes[i]) << shift;
    }
  }

  /// Whether a NULL / a literal ALL appeared in column `k`'s build data
  /// (they occupy dictionary slots in Cardinalities()).
  bool has_null(size_t k) const { return cols_[k].has_null; }
  bool has_all(size_t k) const { return cols_[k].has_all; }

  /// Decodes one column of a packed key back to a Value.
  Value ValueAt(const uint64_t* key, size_t k) const;

  /// Decodes a packed key into the legacy full-width Value form.
  std::vector<Value> DecodeKey(const uint64_t* key) const;

 private:
  struct Column {
    std::vector<Value> values;  // code - 2 -> value, sorted on first build
    std::unordered_map<Value, uint64_t, ValueHash> codes;  // value -> code
    bool has_null = false;  // a NULL appeared in the build data
    bool has_all = false;   // a literal ALL appeared in the build data
    size_t word = 0;
    uint32_t shift = 0;
    uint32_t bits = 0;
    uint64_t field_mask = 0;  // (1 << bits) - 1, pre-shift
    uint64_t max_code() const { return values.size() + 1; }
  };

  void ComputeLayout();

  std::vector<Column> cols_;
  size_t words_ = 1;
};

}  // namespace cube_internal
}  // namespace datacube

#endif  // DATACUBE_CUBE_KEY_CODEC_H_
