#ifndef DATACUBE_CUBE_GROUPING_SET_H_
#define DATACUBE_CUBE_GROUPING_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace datacube {

/// A grouping set over K grouping columns, as a bitmask: bit i set means
/// column i appears concretely in the output; bit i clear means the column
/// is aggregated away and shows the ALL value (Section 3). K <= 63.
using GroupingSet = uint64_t;

/// The full set over `n` columns (the GROUP BY core).
GroupingSet FullSet(size_t n);

/// Whether column `i` is grouped (concrete) in `set`.
inline bool IsGrouped(GroupingSet set, size_t i) {
  return (set >> i) & 1ULL;
}

/// Number of grouped columns.
int PopCount(GroupingSet set);

/// "{Model, Year}" rendering given column names.
std::string GroupingSetToString(GroupingSet set,
                                const std::vector<std::string>& names);

/// CUBE over n columns: the power set, 2^n grouping sets (Section 3: the
/// cube "UNIONs in each super-aggregate of the global cube").
std::vector<GroupingSet> CubeSets(size_t n);

/// ROLLUP over n columns: the n+1 prefix sets
/// (v1..vn), (v1..v_{n-1}, ALL), ..., (ALL..ALL) (Section 3).
std::vector<GroupingSet> RollupSets(size_t n);

/// GROUP BY over n columns: just the full set.
std::vector<GroupingSet> GroupBySets(size_t n);

/// The Section 3.1 compound algebra: `GROUP BY g..., ROLLUP r..., CUBE c...`
/// over g + r + c columns laid out in that order. The result is the cross
/// product of the three parts' grouping-set lists, each shifted to its
/// column window: |result| = 1 × (r+1) × 2^c.
std::vector<GroupingSet> ComposeGroupingSets(size_t num_group_by,
                                             size_t num_rollup,
                                             size_t num_cube);

/// Cross product of partial grouping-set lists, where list `i` covers
/// `widths[i]` columns; each part is shifted into its window. Exposed for
/// testing the algebra identities (CUBE∘ROLLUP = CUBE, ROLLUP∘GROUP BY =
/// ROLLUP).
std::vector<GroupingSet> CrossProductSets(
    const std::vector<std::vector<GroupingSet>>& parts,
    const std::vector<size_t>& widths);

/// Sorts descending by popcount (core first), then descending numerically,
/// and removes duplicates. Canonical order used by planners and output.
std::vector<GroupingSet> NormalizeSets(std::vector<GroupingSet> sets);

}  // namespace datacube

#endif  // DATACUBE_CUBE_GROUPING_SET_H_
