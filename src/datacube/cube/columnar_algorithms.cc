#include <algorithm>
#include <numeric>

#include "datacube/cube/columnar.h"
#include "datacube/obs/trace.h"

// Columnar twins of the per-algorithm entry points in naive_2n.cc,
// union_groupby.cc, from_core.cc, array_cube.cc, sort_rollup.cc,
// sort_groupby.cc, and parallel.cc. Each mirrors its legacy counterpart's
// structure, fallback chain, and CubeStats bookkeeping exactly; the only
// difference is the cell representation — packed keys in flat stores and
// fixed-slot states instead of Value-vector keys in unordered_maps.

namespace datacube {
namespace cube_internal {

namespace {

// Same chain test as sort_rollup.cc (adjacent containment in canonical
// order).
bool IsChain(const std::vector<GroupingSet>& sets) {
  for (size_t i = 1; i < sets.size(); ++i) {
    if ((sets[i - 1] & sets[i]) != sets[i] || sets[i - 1] == sets[i]) {
      return false;
    }
  }
  return true;
}

// Column order that makes every chain set a prefix (sort_rollup.cc).
std::vector<size_t> ChainColumnOrder(const std::vector<GroupingSet>& sets,
                                     size_t num_keys) {
  std::vector<size_t> order;
  GroupingSet covered = 0;
  for (size_t i = sets.size(); i-- > 0;) {
    GroupingSet added = sets[i] & ~covered;
    for (size_t k = 0; k < num_keys; ++k) {
      if (IsGrouped(added, k)) order.push_back(k);
    }
    covered |= sets[i];
  }
  return order;
}

void MaskKey(const uint64_t* key, const std::vector<uint64_t>& mask,
             uint64_t* out) {
  for (size_t w = 0; w < mask.size(); ++w) out[w] = key[w] & mask[w];
}

}  // namespace

Result<SetStores> ColumnarNaive2N(const ColumnarContext& cc,
                                  CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  obs::ScopedSpan span("scan_2n");
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    span.Attr("sets", static_cast<uint64_t>(ctx.sets.size()));
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kNaive2N;
  SetStores maps;
  std::vector<std::vector<uint64_t>> masks;
  maps.reserve(ctx.sets.size());
  masks.reserve(ctx.sets.size());
  for (GroupingSet set : ctx.sets) {
    maps.push_back(cc.MakeStore());
    masks.push_back(cc.codec.MaskForSet(set));
  }
  if (cc.use_batch) {
    // Batched 2^N: chunk the scan and run the two-phase dispatch once per
    // set per chunk. Same single input scan, same per-set stores — only
    // the (independent) per-store fold order changes.
    std::vector<uint64_t> masked(kBatchRows * cc.words);
    std::vector<char*> blocks(kBatchRows);
    for (size_t row = 0; row < ctx.num_rows(); row += kBatchRows) {
      DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
      size_t n = std::min(kBatchRows, ctx.num_rows() - row);
      for (size_t s = 0; s < ctx.sets.size(); ++s) {
        KeyCodec::MaskKeysBatch(cc.RowKey(row), n, cc.words, masks[s].data(),
                                masked.data());
        maps[s].BatchUpsert(masked.data(), n, blocks.data());
        cc.BatchIterRows(blocks.data(), nullptr, row, n, stats);
      }
    }
  } else {
    std::vector<uint64_t> key(cc.words);
    for (size_t row = 0; row < ctx.num_rows(); ++row) {
      if ((row & 0xFFFF) == 0) DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
      const uint64_t* rk = cc.RowKey(row);
      for (size_t s = 0; s < ctx.sets.size(); ++s) {
        MaskKey(rk, masks[s], key.data());
        cc.IterRow(maps[s].FindOrInsert(key.data()), row, stats);
      }
    }
  }
  if (stats != nullptr) ++stats->input_scans;
  return maps;
}

Result<SetStores> ColumnarUnionGroupBy(const ColumnarContext& cc,
                                       CubeStats* stats) {
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kUnionGroupBy;
  SetStores maps;
  maps.reserve(cc.ctx->sets.size());
  for (GroupingSet set : cc.ctx->sets) {
    DATACUBE_RETURN_IF_ERROR(cc.ctx->ControlStatus());
    maps.push_back(FlatGroupBy(cc, set, stats));
  }
  DATACUBE_RETURN_IF_ERROR(cc.ctx->ControlStatus());
  return maps;
}

Result<SetStores> ColumnarCascadeFromCore(const ColumnarContext& cc,
                                          std::optional<CellStore> core,
                                          CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  LatticePlan plan = PlanLattice(ctx.sets, cc.codec.Cardinalities());
  // PlanLattice normalizes to the same canonical order as ctx.sets, so node
  // i corresponds to ctx.sets[i].
  SetStores maps;
  maps.reserve(ctx.sets.size());
  for (size_t i = 0; i < ctx.sets.size(); ++i) maps.push_back(cc.MakeStore());
  GroupingSet full = FullSet(ctx.num_keys);
  std::vector<uint64_t> key(cc.words);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
    const LatticePlan::Node& node = plan.nodes[i];
    obs::ScopedSpan span("compute_set");
    if (span.active()) {
      span.Attr("set", GroupingSetToString(node.set, ctx.key_names));
      span.Attr("est_cells", node.est_cells);
    }
    if (node.set == full && core.has_value()) {
      maps[i] = std::move(*core);
      core.reset();
      if (span.active()) {
        span.Attr("source", "precomputed core");
        span.Attr("cells", static_cast<uint64_t>(maps[i].size()));
      }
      continue;
    }
    if (node.parent < 0) {
      maps[i] = FlatGroupBy(cc, node.set, stats);
      if (span.active()) {
        span.Attr("source", "base scan");
        span.Attr("cells", static_cast<uint64_t>(maps[i].size()));
      }
      continue;
    }
    const CellStore& parent_cells = maps[static_cast<size_t>(node.parent)];
    CellStore& cells = maps[i];
    std::vector<uint64_t> mask = cc.codec.MaskForSet(node.set);
    Status merge_status = Status::OK();
    parent_cells.ForEach([&](const uint64_t* parent_key,
                             const char* parent_block) {
      MaskKey(parent_key, mask, key.data());
      Status st = cc.MergeCell(cells.FindOrInsert(key.data()), parent_block,
                               stats);
      if (!st.ok() && merge_status.ok()) merge_status = st;
    });
    DATACUBE_RETURN_IF_ERROR(merge_status);
    if (span.active()) {
      span.Attr("source",
                "merge from " +
                    GroupingSetToString(
                        plan.nodes[static_cast<size_t>(node.parent)].set,
                        ctx.key_names));
      span.Attr("parent_cells", static_cast<uint64_t>(parent_cells.size()));
      span.Attr("cells", static_cast<uint64_t>(cells.size()));
    }
  }
  DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
  return maps;
}

Result<SetStores> ColumnarFromCore(const ColumnarContext& cc,
                                   CubeStats* stats) {
  if (!cc.ctx->all_mergeable) {
    return ColumnarUnionGroupBy(cc, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kFromCore;
  return ColumnarCascadeFromCore(cc, std::nullopt, stats);
}

Result<SetStores> ColumnarSortFromCore(const ColumnarContext& cc,
                                       CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  if (!ctx.all_mergeable) {
    return ColumnarUnionGroupBy(cc, stats);
  }
  if (ctx.full_set_index < 0) {
    // GROUPING SETS without the core: nothing to seed; fall back.
    return ColumnarFromCore(cc, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kSortFromCore;

  // Sort row indices by the packed grouping key. Any total order works for
  // run detection; packed-word order compares one uint64_t per word instead
  // of K Values.
  std::vector<size_t> rows(ctx.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  {
    obs::ScopedSpan sort_span("sort_rows");
    if (sort_span.active()) {
      sort_span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    }
    if (cc.words == 1) {
      const std::vector<uint64_t>& keys = cc.row_keys;
      std::sort(rows.begin(), rows.end(),
                [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    } else {
      std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
        const uint64_t* ka = cc.RowKey(a);
        const uint64_t* kb = cc.RowKey(b);
        for (size_t w = 0; w < cc.words; ++w) {
          if (ka[w] != kb[w]) return ka[w] < kb[w];
        }
        return false;
      });
    }
  }
  if (stats != nullptr) ++stats->input_scans;

  // One sequential scan: open a new cell whenever the key changes.
  CellStore core = cc.MakeStore();
  {
    obs::ScopedSpan scan_span("scan_sorted_core");
    char* open = nullptr;
    const uint64_t* open_key = nullptr;
    size_t scanned = 0;
    for (size_t r : rows) {
      if ((scanned++ & 0xFFFF) == 0) {
        DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
      }
      const uint64_t* rk = cc.RowKey(r);
      if (open == nullptr ||
          std::memcmp(rk, open_key, cc.words * sizeof(uint64_t)) != 0) {
        open = core.FindOrInsert(rk);
        open_key = rk;
      }
      cc.IterRow(open, r, stats);
    }
    if (scan_span.active()) {
      scan_span.Attr("cells", static_cast<uint64_t>(core.size()));
    }
  }
  return ColumnarCascadeFromCore(cc, std::move(core), stats);
}

Result<SetStores> ColumnarSortRollup(const ColumnarContext& cc,
                                     CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  if (!IsChain(ctx.sets)) {
    return ColumnarFromCore(cc, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kSortRollup;
  size_t levels = ctx.sets.size();  // finest = level 0
  std::vector<size_t> column_order = ChainColumnOrder(ctx.sets, ctx.num_keys);
  std::vector<size_t> prefix_len(levels);
  for (size_t j = 0; j < levels; ++j) {
    prefix_len[j] = static_cast<size_t>(PopCount(ctx.sets[j]));
  }

  // Sort row indices by the chain column order, comparing dictionary codes
  // — the codes are assigned in Value sort order, so this is the same
  // ordering the legacy Value comparison produces.
  std::vector<size_t> rows(ctx.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  {
    obs::ScopedSpan sort_span("sort_rows");
    if (sort_span.active()) {
      sort_span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    }
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      const uint64_t* ka = cc.RowKey(a);
      const uint64_t* kb = cc.RowKey(b);
      for (size_t k : column_order) {
        uint64_t ca = cc.codec.CodeAt(ka, k);
        uint64_t cb = cc.codec.CodeAt(kb, k);
        if (ca != cb) return ca < cb;
      }
      return false;
    });
  }
  if (stats != nullptr) ++stats->input_scans;
  obs::ScopedSpan scan_span("pipelined_rollup_scan");
  if (scan_span.active()) {
    scan_span.Attr("levels", static_cast<uint64_t>(levels));
    scan_span.Attr("mergeable", ctx.all_mergeable ? "true" : "false");
  }

  SetStores maps;
  maps.reserve(levels);
  std::vector<std::vector<uint64_t>> masks;
  masks.reserve(levels);
  for (size_t j = 0; j < levels; ++j) {
    maps.push_back(cc.MakeStore());
    masks.push_back(cc.codec.MaskForSet(ctx.sets[j]));
  }

  // Open cells live directly in their destination stores (a sorted scan
  // touches each key exactly once, so inserting at open time is final);
  // `open[j]` tracks the live block and its key for the cascade at close.
  struct Open {
    char* block = nullptr;
    std::vector<uint64_t> key;
  };
  std::vector<Open> open(levels);
  for (size_t j = 0; j < levels; ++j) open[j].key.resize(cc.words);

  bool mergeable = ctx.all_mergeable;

  // Closes level j: (mergeable path) folds its cell into the next coarser
  // open level. The cell itself already sits in maps[j].
  auto close_level = [&](size_t j) -> Status {
    Open& o = open[j];
    if (o.block == nullptr) return Status::OK();
    if (mergeable && j + 1 < levels) {
      if (open[j + 1].block == nullptr) {
        MaskKey(o.key.data(), masks[j + 1], open[j + 1].key.data());
        open[j + 1].block = maps[j + 1].FindOrInsert(open[j + 1].key.data());
      }
      DATACUBE_RETURN_IF_ERROR(
          cc.MergeCell(open[j + 1].block, o.block, stats));
    }
    o.block = nullptr;
    return Status::OK();
  };

  size_t prev_row = 0;
  bool have_prev = false;
  size_t scanned = 0;
  for (size_t r : rows) {
    if ((scanned++ & 0xFFFF) == 0) {
      DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
    }
    const uint64_t* rk = cc.RowKey(r);
    // Longest matching prefix (in column_order) with the previous row.
    size_t match = 0;
    if (have_prev) {
      const uint64_t* pk = cc.RowKey(prev_row);
      while (match < column_order.size() &&
             cc.codec.CodeAt(rk, column_order[match]) ==
                 cc.codec.CodeAt(pk, column_order[match])) {
        ++match;
      }
    }
    // Close every level whose prefix no longer matches, finest first.
    if (have_prev) {
      for (size_t j = 0; j < levels && prefix_len[j] > match; ++j) {
        DATACUBE_RETURN_IF_ERROR(close_level(j));
      }
    }
    // Open missing levels for this row and fold the row in.
    if (mergeable) {
      if (open[0].block == nullptr) {
        MaskKey(rk, masks[0], open[0].key.data());
        open[0].block = maps[0].FindOrInsert(open[0].key.data());
      }
      cc.IterRow(open[0].block, r, stats);
    } else {
      for (size_t j = 0; j < levels; ++j) {
        if (open[j].block == nullptr) {
          MaskKey(rk, masks[j], open[j].key.data());
          open[j].block = maps[j].FindOrInsert(open[j].key.data());
        }
        cc.IterRow(open[j].block, r, stats);
      }
    }
    prev_row = r;
    have_prev = true;
  }
  for (size_t j = 0; j < levels; ++j) {
    DATACUBE_RETURN_IF_ERROR(close_level(j));
  }
  return maps;
}

Result<SetStores> ColumnarArrayCube(const ColumnarContext& cc,
                                    const CubeOptions& options,
                                    CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  bool is_full_cube =
      ctx.sets.size() == (1ULL << ctx.num_keys) && ctx.num_keys > 0;
  if (!ctx.all_mergeable || !is_full_cube) {
    return ColumnarFromCore(cc, stats);
  }

  // The codec's dictionaries double as the array dimensions: each dimension
  // holds the column's distinct data values (NULL and a literal data ALL
  // included, as in the legacy dictionaries) plus one trailing slot for the
  // ALL plane. Codec codes map to dense indices per column.
  std::vector<size_t> cards = cc.codec.Cardinalities();
  struct Dim {
    size_t values = 0;  // concrete data values incl. NULL / data-ALL
    bool has_null = false;
    bool has_all = false;
    size_t all_idx = 0;  // the projected-plane slot, == values
  };
  std::vector<Dim> dims(ctx.num_keys);
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    dims[k].values = cards[k];
    dims[k].has_null = cc.codec.has_null(k);
    dims[k].has_all = cc.codec.has_all(k);
    dims[k].all_idx = cards[k];
  }
  // Codec code -> dense index: [NULL][data-ALL][concrete...], then the ALL
  // plane last. Data rows never carry masked fields, so a 0 code during the
  // fill is a literal ALL value.
  auto dense_of = [&](size_t k, uint64_t code) -> size_t {
    const Dim& d = dims[k];
    if (code == KeyCodec::kAllCode) return d.has_null ? 1 : 0;
    if (code == KeyCodec::kNullCode) return 0;
    return static_cast<size_t>(code - 2) + (d.has_null ? 1 : 0) +
           (d.has_all ? 1 : 0);
  };
  auto code_of = [&](size_t k, size_t idx) -> uint64_t {
    const Dim& d = dims[k];
    if (d.has_null && idx == 0) return KeyCodec::kNullCode;
    if (d.has_all && idx == (d.has_null ? 1u : 0u)) return KeyCodec::kAllCode;
    return static_cast<uint64_t>(idx - (d.has_null ? 1 : 0) -
                                 (d.has_all ? 1 : 0)) +
           2;
  };

  // Strides for linearizing coordinates; check the Π(C_i + 1) bound.
  std::vector<size_t> stride(ctx.num_keys);
  size_t total_cells = 1;
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    stride[k] = total_cells;
    size_t dim = dims[k].values + 1;
    if (dim != 0 && total_cells > options.array_max_cells / dim) {
      return ColumnarFromCore(cc, stats);  // would exceed the dense budget
    }
    total_cells *= dim;
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kArrayCube;
  obs::ScopedSpan span("array_cube");
  if (span.active()) {
    span.Attr("dense_cells", static_cast<uint64_t>(total_cells));
  }

  // The dense array holds cell blocks from an arena shared with the output
  // stores, so export below can adopt blocks without cloning states.
  CellArenaPtr arena = std::make_shared<CellArena>(cc.layout.block_size,
                                                   cc.layout.block_align);
  CellStore::Stats alloc_stats;
  std::vector<char*> array(total_cells, nullptr);
  std::vector<uint64_t> key(cc.words);
  auto touch = [&](size_t idx) -> char* {
    if (array[idx] == nullptr) array[idx] = cc.NewBlock(*arena, &alloc_stats);
    return array[idx];
  };

  // Fill the core.
  if (cc.use_batch) {
    // Dense addressing replaces the hash probe; the aggregate sweep still
    // batches, touching each row's block once then dispatching per
    // aggregate.
    std::vector<char*> blocks(kBatchRows);
    for (size_t row = 0; row < ctx.num_rows(); row += kBatchRows) {
      DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
      size_t n = std::min(kBatchRows, ctx.num_rows() - row);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t* rk = cc.RowKey(row + i);
        size_t idx = 0;
        for (size_t k = 0; k < ctx.num_keys; ++k) {
          idx += dense_of(k, cc.codec.CodeAt(rk, k)) * stride[k];
        }
        blocks[i] = touch(idx);
      }
      cc.BatchIterRows(blocks.data(), nullptr, row, n, stats);
    }
  } else {
    for (size_t row = 0; row < ctx.num_rows(); ++row) {
      if ((row & 0xFFFF) == 0) DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
      const uint64_t* rk = cc.RowKey(row);
      size_t idx = 0;
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        idx += dense_of(k, cc.codec.CodeAt(rk, k)) * stride[k];
      }
      cc.IterRow(touch(idx), row, stats);
    }
  }
  if (stats != nullptr) ++stats->input_scans;

  // Project one dimension at a time, smallest cardinality first — the
  // same plane order and merge sequence as the legacy array cube.
  std::vector<size_t> coord(ctx.num_keys);
  GroupingSet full = FullSet(ctx.num_keys);
  for (GroupingSet set : ctx.sets) {
    if (set == full) continue;
    DATACUBE_RETURN_IF_ERROR(ctx.ControlStatus());
    size_t best_d = ctx.num_keys;
    for (size_t d = 0; d < ctx.num_keys; ++d) {
      if (IsGrouped(set, d)) continue;
      if (best_d == ctx.num_keys || dims[d].values < dims[best_d].values) {
        best_d = d;
      }
    }
    GroupingSet parent = set | (1ULL << best_d);
    std::vector<size_t> grouped_dims;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (IsGrouped(parent, k)) grouped_dims.push_back(k);
    }
    std::fill(coord.begin(), coord.end(), 0);
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (!IsGrouped(parent, k)) coord[k] = dims[k].all_idx;
    }
    while (true) {
      size_t parent_idx = 0;
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        parent_idx += coord[k] * stride[k];
      }
      if (array[parent_idx] != nullptr) {
        size_t child_idx =
            parent_idx + (dims[best_d].all_idx - coord[best_d]) *
                             stride[best_d];
        DATACUBE_RETURN_IF_ERROR(
            cc.MergeCell(touch(child_idx), array[parent_idx], stats));
      }
      size_t pos = 0;
      for (; pos < grouped_dims.size(); ++pos) {
        size_t k = grouped_dims[pos];
        if (++coord[k] < dims[k].values) break;
        coord[k] = 0;
      }
      if (pos == grouped_dims.size()) break;
    }
  }

  // Export the array into per-set stores. Blocks are adopted, not cloned —
  // the stores share the arena. Each cell belongs to exactly one set.
  SetStores maps;
  maps.reserve(ctx.sets.size());
  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    maps.push_back(cc.MakeStore(arena));
  }
  // Fold the dense-fill allocation counters into the first store's stats
  // so FlushStoreStats sees them.
  maps[0].MutableStats().heap_state_allocs += alloc_stats.heap_state_allocs;
  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    GroupingSet set = ctx.sets[s];
    std::vector<size_t> grouped_dims;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (IsGrouped(set, k)) grouped_dims.push_back(k);
    }
    std::fill(coord.begin(), coord.end(), 0);
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (!IsGrouped(set, k)) coord[k] = dims[k].all_idx;
    }
    while (true) {
      size_t idx = 0;
      for (size_t k = 0; k < ctx.num_keys; ++k) idx += coord[k] * stride[k];
      if (array[idx] != nullptr) {
        std::fill(key.begin(), key.end(), 0);
        for (size_t k : grouped_dims) {
          cc.codec.SetCode(key.data(), k, code_of(k, coord[k]));
        }
        maps[s].InsertAdopt(key.data(), array[idx]);
        array[idx] = nullptr;
      }
      size_t pos = 0;
      for (; pos < grouped_dims.size(); ++pos) {
        size_t k = grouped_dims[pos];
        if (++coord[k] < dims[k].values) break;
        coord[k] = 0;
      }
      if (pos == grouped_dims.size()) break;
    }
  }
  return maps;
}

// ColumnarParallel — the morsel-driven scan / radix-partitioned merge /
// parallel lattice cascade — lives in parallel_columnar.cc.

// Assembles the result relation from per-set flat stores — the only place
// packed keys are decoded back to Values. Mirrors AssembleResult in
// cube_operator.cc row for row.
Result<Table> AssembleColumnarResult(const ColumnarContext& cc,
                                     SetStores& stores, CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  const CubeSpec& spec = *ctx.spec;

  // SQL semantics: the empty grouping set produces exactly one row even for
  // empty input (the aggregate over the empty set).
  std::vector<uint64_t> zero_key(cc.words, 0);
  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    if (ctx.sets[s] == 0 && stores[s].size() == 0) {
      stores[s].FindOrInsert(zero_key.data());
    }
  }

  // Result schema (identical to the legacy assembler's).
  std::vector<Field> fields;
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    fields.push_back(Field{ctx.key_names[k], ctx.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (const Decoration& d : spec.decorations) {
    fields.push_back(Field{d.name, d.expr->output_type(), /*nullable=*/true,
                           /*allow_all=*/false});
  }
  for (size_t a = 0; a < ctx.aggs.size(); ++a) {
    std::string name = spec.aggregates[a].output_name.empty()
                           ? spec.aggregates[a].function
                           : spec.aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  if (spec.add_grouping_columns) {
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      fields.push_back(Field{"grouping_" + ctx.key_names[k], DataType::kBool,
                             /*nullable=*/false, /*allow_all=*/false});
    }
  }
  if (spec.add_grouping_id) {
    fields.push_back(Field{"grouping_id", DataType::kInt64,
                           /*nullable=*/false, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};

  size_t total_cells = 0;
  for (const CellStore& m : stores) total_cells += m.size();
  out.Reserve(total_cells);
  if (stats != nullptr) stats->output_cells = total_cells;

  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    GroupingSet set = ctx.sets[s];
    const CellStore& store = stores[s];
    Status row_status = Status::OK();
    store.ForEach([&](const uint64_t* key, char* block) {
      if (!row_status.ok()) return;
      const CellHeader* cell = ColumnarContext::Header(block);
      std::vector<Value> row;
      row.reserve(out.num_columns());
      // Grouping columns: ALL (or NULL under the minimalist Section 3.4
      // design) in aggregated-away positions.
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        if (IsGrouped(set, k)) {
          row.push_back(cc.codec.ValueAt(key, k));
        } else {
          row.push_back(spec.all_mode == AllMode::kAllToken ? Value::All()
                                                            : Value::Null());
        }
      }
      // Decorations: value when the grouping set functionally determines it
      // (covers the determinant), else NULL — Table 7's continent rule.
      for (const Decoration& d : spec.decorations) {
        bool determined = (set & d.determinant) == d.determinant;
        if (determined && cell->has_repr) {
          Result<Value> v = d.expr->Evaluate(*ctx.input, cell->repr_row);
          if (!v.ok()) {
            row_status = v.status();
            return;
          }
          row.push_back(std::move(v).value());
        } else {
          row.push_back(Value::Null());
        }
      }
      // Aggregates.
      for (size_t a = 0; a < ctx.aggs.size(); ++a) {
        Result<Value> v = ctx.aggs[a]->FinalChecked(cc.StateOf(block, a));
        if (!v.ok()) {
          row_status = v.status();
          return;
        }
        row.push_back(std::move(v).value());
        if (stats != nullptr) ++stats->final_calls;
      }
      // GROUPING() discriminators (Section 3.3/3.4): TRUE where the column
      // is an ALL value.
      if (spec.add_grouping_columns) {
        for (size_t k = 0; k < ctx.num_keys; ++k) {
          row.push_back(Value::Bool(!IsGrouped(set, k)));
        }
      }
      if (spec.add_grouping_id) {
        int64_t id = 0;
        for (size_t k = 0; k < ctx.num_keys; ++k) {
          if (!IsGrouped(set, k)) id |= (1LL << k);
        }
        row.push_back(Value::Int64(id));
      }
      row_status = out.AppendRow(row);
    });
    DATACUBE_RETURN_IF_ERROR(row_status);
  }
  return out;
}

}  // namespace cube_internal
}  // namespace datacube
