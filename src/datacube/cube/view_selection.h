#ifndef DATACUBE_CUBE_VIEW_SELECTION_H_
#define DATACUBE_CUBE_VIEW_SELECTION_H_

#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/grouping_set.h"

namespace datacube {

/// Partial cube materialization — the Section 6 discussion: "Harinarayn,
/// Rajaraman, and Ullman have interesting ideas on pre-computing a sub-cube
/// of the cube." This implements their greedy view-selection algorithm
/// (SIGMOD'96) under the linear cost model: answering a group-by query
/// costs the size of the smallest materialized view that is a superset of
/// its grouping set.

/// Estimated row count of the view over `set`: min(base_rows, Π grouped
/// C_k) — a view cannot have more rows than the base data.
double EstimateViewSize(GroupingSet set,
                        const std::vector<size_t>& cardinalities,
                        size_t base_rows);

/// Result of greedy selection.
struct ViewSelection {
  /// Selected grouping sets; views[0] is always the core (the top view must
  /// be materialized for the rest of the lattice to be answerable).
  std::vector<GroupingSet> views;
  /// Benefit of each greedy pick (benefits[0] = 0 for the mandatory core).
  std::vector<double> benefits;
  /// Σ over all 2^N grouping-set queries of the cheapest-ancestor cost,
  /// after materializing `views`.
  double total_query_cost = 0;
  /// Estimated resident bytes per selected view, parallel to `views`, and
  /// their sum. Filled only by SelectViewsByByteBudget.
  std::vector<double> view_bytes;
  double selected_bytes = 0;
};

/// Byte-denominated cost model for SelectViewsByByteBudget. Cell counts
/// come from the per-column cardinalities (the same estimate the lattice
/// planner uses), optionally overridden per set by observed actuals — the
/// per-set cell counts `CubeStats::per_set` collects on every execution.
struct LatticeByteCostModel {
  size_t num_dims = 0;
  /// Distinct-value count per grouping column (KeyCodec::Cardinalities /
  /// cube_internal::KeyCardinalities).
  std::vector<size_t> cardinalities;
  size_t base_rows = 0;
  /// Estimated resident bytes per cell: the packed key words plus the
  /// fixed-slot aggregate block (words*8 + StateLayout::block_size).
  double bytes_per_cell = 1.0;
  /// Candidate views AND the query workload the selection must serve;
  /// empty = the full 2^num_dims lattice. ExecuteCube restricts this to
  /// the requested grouping sets. Must contain the core when non-empty.
  std::vector<GroupingSet> candidates;
  /// Observed per-set actual cell counts overriding the cardinality
  /// estimate where present (feed CubeStats::per_set from a prior run).
  std::vector<std::pair<GroupingSet, double>> observed_cells;

  /// Estimated cells of the view over `set`: the observed override if any,
  /// else EstimateViewSize.
  double CellsOf(GroupingSet set) const;
  double BytesOf(GroupingSet set) const { return CellsOf(set) * bytes_per_cell; }
};

/// The benefit-per-byte greedy under a byte budget: admits the mandatory
/// core unconditionally (even when it alone exceeds the budget — a
/// too-small budget degrades to "core only"), then repeatedly picks the
/// candidate view maximizing B(v, S) / bytes(v) while the summed resident
/// bytes stay within `budget_bytes`. Benefit is computed over the candidate
/// workload only. Fills ViewSelection::view_bytes / selected_bytes.
Result<ViewSelection> SelectViewsByByteBudget(const LatticeByteCostModel& model,
                                              double budget_bytes);

/// Greedily selects up to `max_views` views (including the mandatory core)
/// from the full 2^num_dims lattice, maximizing the HRU benefit
///   B(v, S) = Σ_{w ⊆ v} max(0, cost(w, S) − size(v)).
/// num_dims must be <= 16 (the algorithm enumerates the lattice).
Result<ViewSelection> SelectViewsGreedy(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, size_t max_views);

/// The space-budget variant HRU also propose: picks greedily by benefit per
/// unit of space, B(v, S) / size(v), admitting views while the summed
/// estimated sizes (beyond the mandatory core) stay within `space_budget`
/// rows. Views too large for the remaining budget are skipped, not
/// terminal.
Result<ViewSelection> SelectViewsGreedyBySpace(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, double space_budget);

/// The cheapest selected view able to answer `target` (smallest estimated
/// superset). Present by construction, since the core is always selected.
GroupingSet CheapestAncestor(const ViewSelection& selection,
                             GroupingSet target,
                             const std::vector<size_t>& cardinalities,
                             size_t base_rows);

}  // namespace datacube

#endif  // DATACUBE_CUBE_VIEW_SELECTION_H_
