#ifndef DATACUBE_CUBE_VIEW_SELECTION_H_
#define DATACUBE_CUBE_VIEW_SELECTION_H_

#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/grouping_set.h"

namespace datacube {

/// Partial cube materialization — the Section 6 discussion: "Harinarayn,
/// Rajaraman, and Ullman have interesting ideas on pre-computing a sub-cube
/// of the cube." This implements their greedy view-selection algorithm
/// (SIGMOD'96) under the linear cost model: answering a group-by query
/// costs the size of the smallest materialized view that is a superset of
/// its grouping set.

/// Estimated row count of the view over `set`: min(base_rows, Π grouped
/// C_k) — a view cannot have more rows than the base data.
double EstimateViewSize(GroupingSet set,
                        const std::vector<size_t>& cardinalities,
                        size_t base_rows);

/// Result of greedy selection.
struct ViewSelection {
  /// Selected grouping sets; views[0] is always the core (the top view must
  /// be materialized for the rest of the lattice to be answerable).
  std::vector<GroupingSet> views;
  /// Benefit of each greedy pick (benefits[0] = 0 for the mandatory core).
  std::vector<double> benefits;
  /// Σ over all 2^N grouping-set queries of the cheapest-ancestor cost,
  /// after materializing `views`.
  double total_query_cost = 0;
};

/// Greedily selects up to `max_views` views (including the mandatory core)
/// from the full 2^num_dims lattice, maximizing the HRU benefit
///   B(v, S) = Σ_{w ⊆ v} max(0, cost(w, S) − size(v)).
/// num_dims must be <= 16 (the algorithm enumerates the lattice).
Result<ViewSelection> SelectViewsGreedy(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, size_t max_views);

/// The space-budget variant HRU also propose: picks greedily by benefit per
/// unit of space, B(v, S) / size(v), admitting views while the summed
/// estimated sizes (beyond the mandatory core) stay within `space_budget`
/// rows. Views too large for the remaining budget are skipped, not
/// terminal.
Result<ViewSelection> SelectViewsGreedyBySpace(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, double space_budget);

/// The cheapest selected view able to answer `target` (smallest estimated
/// superset). Present by construction, since the core is always selected.
GroupingSet CheapestAncestor(const ViewSelection& selection,
                             GroupingSet target,
                             const std::vector<size_t>& cardinalities,
                             size_t base_rows);

}  // namespace datacube

#endif  // DATACUBE_CUBE_VIEW_SELECTION_H_
