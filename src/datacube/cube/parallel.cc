#include <algorithm>
#include <thread>

#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

// Section 5's closing observation: "the distributive, algebraic, and
// holistic taxonomy is very useful in computing aggregates for parallel
// database systems. ... aggregates are computed for each partition of a
// database in parallel. Then the results of these parallel computations are
// combined."
//
// We partition the input rows, hash-aggregate each partition's GROUP BY core
// in its own thread, merge the per-partition cores (scratchpad Merge — the
// same Iter_super mechanism the lattice cascade uses), then cascade the
// merged core through the lattice serially. Falls back to the serial
// from-core path when merging is unavailable or the input is tiny.
Result<SetMaps> ComputeParallel(const CubeContext& ctx,
                                const CubeOptions& options, CubeStats* stats) {
  size_t threads = options.num_threads < 1
                       ? 1
                       : static_cast<size_t>(options.num_threads);
  constexpr size_t kMinRowsPerThread = 1024;
  if (threads > 1) {
    threads = std::min(threads, ctx.num_rows() / kMinRowsPerThread + 1);
  }
  if (threads <= 1 || !ctx.all_mergeable || ctx.full_set_index < 0) {
    return ComputeFromCore(ctx, stats);
  }
  // The committed parallel path is partition-parallel from-core;
  // threads_used (set below) records the parallelism.
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kFromCore;

  GroupingSet full = FullSet(ctx.num_keys);
  std::vector<CellMap> partials(threads);
  std::vector<CubeStats> partial_stats(threads);
  std::vector<std::thread> workers;
  size_t rows = ctx.num_rows();
  size_t chunk = (rows + threads - 1) / threads;
  CellMap core;
  {
    // Worker spans would need their own thread-local traces; the
    // coordinating thread's span covers scatter, scan, and gather.
    obs::ScopedSpan core_span("parallel_core");
    if (core_span.active()) {
      core_span.Attr("threads", static_cast<uint64_t>(threads));
      core_span.Attr("rows", static_cast<uint64_t>(rows));
      core_span.Attr("chunk", static_cast<uint64_t>(chunk));
    }
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        size_t lo = t * chunk;
        size_t hi = std::min(rows, lo + chunk);
        CellMap& cells = partials[t];
        for (size_t row = lo; row < hi; ++row) {
          std::vector<Value> key = ctx.MaskedKey(row, full);
          auto [it, inserted] = cells.try_emplace(std::move(key));
          if (inserted) it->second = ctx.NewCell();
          ctx.IterRow(&it->second, row, &partial_stats[t]);
        }
      });
    }
    for (std::thread& w : workers) w.join();

    // Combine per-partition cores.
    core = std::move(partials[0]);
    Status merge_status = Status::OK();
    for (size_t t = 1; t < threads; ++t) {
      for (auto& [key, cell] : partials[t]) {
        auto [it, inserted] = core.try_emplace(key);
        if (inserted) {
          it->second = std::move(cell);
        } else {
          Status st = ctx.MergeCell(&it->second, cell, stats);
          if (!st.ok() && merge_status.ok()) merge_status = st;
        }
      }
    }
    if (!merge_status.ok()) return merge_status;
    if (core_span.active()) {
      core_span.Attr("core_cells", static_cast<uint64_t>(core.size()));
    }
  }

  if (stats != nullptr) {
    ++stats->input_scans;  // the partitions jointly scanned the input once
    for (const CubeStats& ps : partial_stats) {
      stats->iter_calls += ps.iter_calls;
      stats->merge_calls += ps.merge_calls;
    }
    stats->threads_used = static_cast<int>(threads);
  }
  return CascadeFromCore(ctx, std::move(core), stats);
}

}  // namespace cube_internal
}  // namespace datacube
