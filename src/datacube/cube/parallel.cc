#include <algorithm>
#include <atomic>

#include "datacube/cube/cube_internal.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

// Section 5's closing observation: "the distributive, algebraic, and
// holistic taxonomy is very useful in computing aggregates for parallel
// database systems. ... aggregates are computed for each partition of a
// database in parallel. Then the results of these parallel computations are
// combined."
//
// This is the legacy CellMap edition of that idea, kept as the
// differential-oracle escape hatch (use_legacy_cellmap): morsel-driven scan
// tasks on the shared ThreadPool hash-aggregate the GROUP BY core into
// per-worker CellMaps, a serial combine merges them (scratchpad Merge — the
// same Iter_super mechanism the lattice cascade uses), and the merged core
// cascades through the lattice serially. The columnar path in
// parallel_columnar.cc additionally radix-partitions the merge and
// parallelizes the cascade. Falls back to the serial from-core path when
// merging is unavailable or the input is tiny.
Result<SetMaps> ComputeParallel(const CubeContext& ctx,
                                const CubeOptions& options, CubeStats* stats) {
  size_t threads = ClampThreads(options.num_threads, ctx.num_rows());
  if (threads <= 1 || !ctx.all_mergeable || ctx.full_set_index < 0) {
    if (stats != nullptr) stats->threads_used = 1;
    return ComputeFromCore(ctx, stats);
  }
  // The committed parallel path is partition-parallel from-core;
  // threads_used (set below) records the parallelism.
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kFromCore;

  GroupingSet full = FullSet(ctx.num_keys);
  std::vector<CellMap> partials(threads);
  std::vector<CubeStats> partial_stats(threads);
  std::vector<uint64_t> morsels(threads, 0);
  size_t rows = ctx.num_rows();
  size_t morsel = options.morsel_rows == 0 ? size_t{64} * 1024
                                           : options.morsel_rows;
  std::atomic<size_t> cursor{0};
  CellMap core;
  {
    obs::ScopedSpan core_span("parallel_core");
    if (core_span.active()) {
      core_span.Attr("threads", static_cast<uint64_t>(threads));
      core_span.Attr("rows", static_cast<uint64_t>(rows));
      core_span.Attr("morsel_rows", static_cast<uint64_t>(morsel));
    }
    ThreadPool& pool = ThreadPool::Global();
    TaskGroup group(pool);
    for (size_t t = 0; t < threads; ++t) {
      group.Spawn([&, t] {
        // Stitched under parallel_core via the TaskGroup's span context.
        obs::ScopedSpan worker_span("morsel_scan");
        CellMap& cells = partials[t];
        while (true) {
          size_t lo = cursor.fetch_add(morsel, std::memory_order_relaxed);
          if (lo >= rows) break;
          size_t hi = std::min(rows, lo + morsel);
          ++morsels[t];
          for (size_t row = lo; row < hi; ++row) {
            std::vector<Value> key = ctx.MaskedKey(row, full);
            auto [it, inserted] = cells.try_emplace(std::move(key));
            if (inserted) it->second = ctx.NewCell();
            ctx.IterRow(&it->second, row, &partial_stats[t]);
          }
        }
        if (worker_span.active()) {
          worker_span.Attr("worker", static_cast<uint64_t>(t));
          worker_span.Attr("morsels", morsels[t]);
        }
      });
    }
    group.Wait();

    // Combine per-partition cores serially, keeping the first error in
    // worker-index order (deterministic regardless of scheduling).
    core = std::move(partials[0]);
    Status merge_status = Status::OK();
    for (size_t t = 1; t < threads; ++t) {
      for (auto& [key, cell] : partials[t]) {
        auto [it, inserted] = core.try_emplace(key);
        if (inserted) {
          it->second = std::move(cell);
        } else {
          Status st = ctx.MergeCell(&it->second, cell, stats);
          if (!st.ok() && merge_status.ok()) merge_status = st;
        }
      }
    }
    if (!merge_status.ok()) return merge_status;
    if (core_span.active()) {
      core_span.Attr("core_cells", static_cast<uint64_t>(core.size()));
    }
  }

  if (stats != nullptr) {
    ++stats->input_scans;  // the morsels jointly scanned the input once
    for (const CubeStats& ps : partial_stats) {
      stats->iter_calls += ps.iter_calls;
      stats->merge_calls += ps.merge_calls;
    }
    for (uint64_t m : morsels) stats->morsels_dispatched += m;
    stats->threads_used = static_cast<int>(threads);
  }
  return CascadeFromCore(ctx, std::move(core), stats);
}

}  // namespace cube_internal
}  // namespace datacube
