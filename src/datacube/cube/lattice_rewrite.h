#ifndef DATACUBE_CUBE_LATTICE_REWRITE_H_
#define DATACUBE_CUBE_LATTICE_REWRITE_H_

#include <cstdint>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/view_selection.h"

// Budgeted partial materialization inside ExecuteCube: when
// CubeOptions::materialize_budget_bytes (or DATACUBE_MATERIALIZE_BUDGET) is
// set, the operator materializes only the HRU benefit-per-byte selection of
// the requested grouping sets and answers every other set by
// super-aggregating its cheapest materialized ancestor — the paper's §3
// observation that distributive/algebraic super-aggregates never need base
// data, applied to serving. Holistic aggregates are never rewritten.

namespace datacube {
namespace cube_internal {

/// The per-request rewrite plan under a byte budget.
struct LatticeRewritePlan {
  /// The views to materialize: a subset of the requested sets, core first.
  ViewSelection selection;
  /// The cost model the selection ran under (cardinality-estimated cells ×
  /// bytes_per_cell = packed key words + aggregate state block).
  LatticeByteCostModel model;
  size_t budget_bytes = 0;
  /// Per requested set (parallel to ctx.sets): the selected view the plan
  /// expects to fold it from — the set itself when materialized directly.
  /// Execution re-picks by actual materialized size; this estimate-based
  /// choice is what plain EXPLAIN prints.
  std::vector<GroupingSet> planned_source;
};

/// Whether the budgeted rewrite may apply: every aggregate merges, none is
/// holistic (holistic super-aggregates need base data — the rewrite must
/// never touch them, mergeable or not), the core is among the requested
/// sets (it is the only view guaranteed to answer everything else), and the
/// lattice is enumerable (num_keys <= 16). Ineligible requests run the
/// normal full computation with all lattice_* stats zero.
bool LatticeRewriteEligible(const CubeContext& ctx);

/// The effective byte budget: the CubeOptions field wins; otherwise
/// DATACUBE_MATERIALIZE_BUDGET (decimal bytes) applies process-wide. 0 = no
/// budget.
size_t ResolveMaterializeBudget(const CubeOptions& options);

/// Runs the benefit-per-byte greedy over the requested sets and records the
/// planned fold source per set. Requires LatticeRewriteEligible(ctx).
Result<LatticeRewritePlan> PlanLatticeRewrite(const CubeContext& ctx,
                                              const ColumnarContext& cc,
                                              size_t budget_bytes);

/// Serves every requested set from the materialized selection:
/// directly-materialized sets adopt their store; every other set is folded
/// from its cheapest (smallest actual cell count) materialized ancestor via
/// the mask-and-Merge cascade; a set with no usable ancestor — impossible
/// when the core was selected, kept as a safety net — recomputes from base
/// data. Fills stats->per_set provenance (answered_from / materialized) and
/// the lattice_* counters. The returned stores are parallel to `requested`.
Result<SetStores> FoldSelectedToRequested(
    const ColumnarContext& cc, const LatticeRewritePlan& plan,
    const std::vector<GroupingSet>& requested, SetStores selected_stores,
    CubeStats* stats);

}  // namespace cube_internal
}  // namespace datacube

#endif  // DATACUBE_CUBE_LATTICE_REWRITE_H_
