#include <algorithm>
#include <numeric>
#include <optional>

#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

// Section 5's sort-based aggregation: "if the number of aggregates is too
// large to fit in memory, use sorting ... to organize the data by value and
// then aggregate with a sequential scan of the sorted data." The core GROUP
// BY is computed without any hash table — sort the rows by the full grouping
// key, then fold each run of equal keys into one cell. The lattice cascade
// above the core is shared with kFromCore.
Result<SetMaps> ComputeSortFromCore(const CubeContext& ctx, CubeStats* stats) {
  if (!ctx.all_mergeable) {
    return ComputeUnionGroupBy(ctx, stats);
  }
  if (ctx.full_set_index < 0) {
    // GROUPING SETS without the core: nothing to seed; fall back.
    return ComputeFromCore(ctx, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kSortFromCore;
  GroupingSet full = FullSet(ctx.num_keys);

  // Sort row indices by the grouping key columns.
  std::vector<size_t> rows(ctx.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  {
    obs::ScopedSpan sort_span("sort_rows");
    if (sort_span.active()) {
      sort_span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    }
    std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        int cmp = ctx.key_columns[k][a].Compare(ctx.key_columns[k][b]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
  }
  if (stats != nullptr) ++stats->input_scans;

  // One sequential scan: close a cell whenever the key changes.
  CellMap core;
  {
    obs::ScopedSpan scan_span("scan_sorted_core");
    std::optional<Cell> open;
    std::vector<Value> open_key;
    for (size_t r : rows) {
      bool same = open.has_value();
      for (size_t k = 0; k < ctx.num_keys && same; ++k) {
        same = ctx.key_columns[k][r] == open_key[k];
      }
      if (!same) {
        if (open.has_value()) {
          core.emplace(std::move(open_key), std::move(*open));
        }
        open = ctx.NewCell();
        open_key = ctx.MaskedKey(r, full);
      }
      ctx.IterRow(&*open, r, stats);
    }
    if (open.has_value()) {
      core.emplace(std::move(open_key), std::move(*open));
    }
    if (scan_span.active()) {
      scan_span.Attr("cells", static_cast<uint64_t>(core.size()));
    }
  }
  return CascadeFromCore(ctx, std::move(core), stats);
}

}  // namespace cube_internal
}  // namespace datacube
