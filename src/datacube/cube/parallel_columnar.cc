#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "datacube/cube/columnar.h"
#include "datacube/cube/grouping_set.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/obs/trace.h"

// The morsel-driven parallel cube path (Section 5's closing note: aggregates
// "are computed for each partition of a database in parallel [and] then
// combined"). Three phases, all executed as tasks on the process-wide
// ThreadPool:
//
//   1. Scan — workers pull fixed-size row ranges (morsels) from one atomic
//      cursor, so a skewed or straggling chunk no longer serializes the scan
//      the way static division did. Each worker hash-aggregates into
//      thread-local stores, radix-partitioned by the high bits of the
//      encoded-key hash into P = threads x 4 partitions.
//   2. Merge — because the key space (not just the row space) is
//      partitioned, the P partitions are disjoint across workers, and the
//      combine becomes P independent single-threaded merges executed as pool
//      tasks: no serial combine, no locks on the hot path.
//   3. Cascade — the grouping-set lattice is scheduled as one task per
//      non-core node, spawned as soon as its parent node finishes, replacing
//      the serial CascadeFromCore tail. Children of the core fold directly
//      from the partitioned shards.
//
// Per-task CubeStats / Status slots keep workers write-disjoint; everything
// is folded on the coordinator in task-index order, so counters and the
// winning error are deterministic regardless of completion order.

namespace datacube {
namespace cube_internal {

namespace {

constexpr size_t kDefaultMorselRows = 64 * 1024;
// Auto partition count cap: beyond this, per-worker store bookkeeping costs
// more than the extra merge parallelism buys.
constexpr size_t kMaxAutoPartitions = 256;

void MaskKey(const uint64_t* key, const std::vector<uint64_t>& mask,
             uint64_t* out) {
  for (size_t w = 0; w < mask.size(); ++w) out[w] = key[w] & mask[w];
}

// Radix partition of a packed key: the high hash bits, keeping the selector
// independent of CellStore's low-bit slot index.
inline size_t PartitionOf(const uint64_t* key, size_t words,
                          size_t partitions) {
  return static_cast<size_t>(HashPackedKey(key, words) >> 32) % partitions;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Deterministic fold of per-task stats into the query's CubeStats (always
// called in task-index order).
void FoldStats(const CubeStats& from, CubeStats* into) {
  if (into == nullptr) return;
  into->iter_calls += from.iter_calls;
  into->merge_calls += from.merge_calls;
  into->input_scans += from.input_scans;
  into->hash_cells += from.hash_cells;
}

}  // namespace

Result<SetStores> ColumnarParallel(const ColumnarContext& cc,
                                   const CubeOptions& options,
                                   CubeStats* stats) {
  const CubeContext& ctx = *cc.ctx;
  size_t threads = ClampThreads(options.num_threads, ctx.num_rows());
  if (threads <= 1 || !ctx.all_mergeable || ctx.full_set_index < 0) {
    if (stats != nullptr) stats->threads_used = 1;
    return ColumnarFromCore(cc, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kFromCore;

  ThreadPool& pool = ThreadPool::Global();
  size_t rows = ctx.num_rows();
  size_t morsel =
      options.morsel_rows == 0 ? kDefaultMorselRows : options.morsel_rows;
  size_t partitions =
      options.num_partitions == 0
          ? std::min(threads * 4, kMaxAutoPartitions)
          : options.num_partitions;

  // ---- Phase 1: morsel-driven scan into per-worker partitioned stores.
  std::vector<std::vector<CellStore>> partials(threads);
  std::vector<CubeStats> scan_stats(threads);
  std::vector<uint64_t> scan_morsels(threads, 0);
  std::vector<Status> scan_statuses(threads, Status::OK());
  std::atomic<size_t> cursor{0};
  auto scan_start = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan scan_span("parallel_scan");
    if (scan_span.active()) {
      scan_span.Attr("threads", static_cast<uint64_t>(threads));
      scan_span.Attr("rows", static_cast<uint64_t>(rows));
      scan_span.Attr("morsel_rows", static_cast<uint64_t>(morsel));
      scan_span.Attr("partitions", static_cast<uint64_t>(partitions));
    }
    TaskGroup group(pool);
    for (size_t t = 0; t < threads; ++t) {
      group.Spawn([&, t] {
        // Pool-thread span: stitched under the coordinator's parallel_scan
        // span via the TaskGroup's propagated context. One TLS check when
        // the query is untraced.
        obs::ScopedSpan worker_span("morsel_scan");
        uint64_t rows_scanned = 0;
        std::vector<CellStore>& parts = partials[t];
        parts.reserve(partitions);
        for (size_t p = 0; p < partitions; ++p) {
          parts.push_back(cc.MakeStore());
        }
        CubeStats& my_stats = scan_stats[t];
        // Batched morsel scan scratch: rows of a chunk are counting-sorted
        // into per-partition row-id buckets, then each bucket's keys are
        // gathered contiguously and probed/swept as one batch. Row ids ride
        // in uint32 group-id vectors, so gate on the input fitting.
        const bool batch = cc.use_batch && rows <= UINT32_MAX;
        std::vector<std::vector<uint32_t>> bucket;
        std::vector<uint64_t> gathered;
        std::vector<char*> blocks;
        if (batch) {
          bucket.resize(partitions);
          gathered.resize(kBatchRows * cc.words);
          blocks.resize(kBatchRows);
        }
        while (true) {
          // Morsel boundary: the cancellation point of the parallel scan. A
          // tripped control abandons the worker's remaining morsels; the
          // coordinator surfaces the status after the barrier.
          if (Status st = ctx.ControlStatus(); !st.ok()) {
            scan_statuses[t] = std::move(st);
            break;
          }
          size_t lo = cursor.fetch_add(morsel, std::memory_order_relaxed);
          if (lo >= rows) break;
          size_t hi = std::min(rows, lo + morsel);
          ++scan_morsels[t];
          rows_scanned += hi - lo;
          if (batch) {
            for (size_t chunk = lo; chunk < hi; chunk += kBatchRows) {
              size_t n = std::min(kBatchRows, hi - chunk);
              if (partitions == 1) {
                // Keys are already contiguous in row_keys — probe straight
                // through without bucketing.
                parts[0].BatchUpsert(cc.RowKey(chunk), n, blocks.data());
                cc.BatchIterRows(blocks.data(), nullptr, chunk, n,
                                 &my_stats);
                continue;
              }
              for (std::vector<uint32_t>& b : bucket) b.clear();
              for (size_t i = 0; i < n; ++i) {
                const uint64_t* key = cc.RowKey(chunk + i);
                bucket[PartitionOf(key, cc.words, partitions)].push_back(
                    static_cast<uint32_t>(chunk + i));
              }
              for (size_t p = 0; p < partitions; ++p) {
                const std::vector<uint32_t>& prows = bucket[p];
                if (prows.empty()) continue;
                for (size_t j = 0; j < prows.size(); ++j) {
                  std::memcpy(gathered.data() + j * cc.words,
                              cc.RowKey(prows[j]),
                              cc.words * sizeof(uint64_t));
                }
                parts[p].BatchUpsert(gathered.data(), prows.size(),
                                     blocks.data());
                cc.BatchIterRows(blocks.data(), prows.data(), 0,
                                 prows.size(), &my_stats);
              }
            }
          } else {
            for (size_t row = lo; row < hi; ++row) {
              const uint64_t* key = cc.RowKey(row);
              size_t p = partitions == 1
                             ? 0
                             : PartitionOf(key, cc.words, partitions);
              cc.IterRow(parts[p].FindOrInsert(key), row, &my_stats);
            }
          }
        }
        if (worker_span.active()) {
          worker_span.Attr("worker", static_cast<uint64_t>(t));
          worker_span.Attr("morsels", scan_morsels[t]);
          worker_span.Attr("rows", rows_scanned);
        }
      });
    }
    group.Wait();
  }
  double scan_seconds = SecondsSince(scan_start);
  for (const Status& st : scan_statuses) {
    DATACUBE_RETURN_IF_ERROR(st);
  }

  // ---- Phase 2: P independent single-threaded partition merges.
  std::vector<CellStore> core_shards(partitions);
  std::vector<CubeStats> merge_stats(partitions);
  std::vector<Status> merge_statuses(partitions, Status::OK());
  auto merge_start = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan merge_span("parallel_merge");
    if (merge_span.active()) {
      merge_span.Attr("merge_tasks", static_cast<uint64_t>(partitions));
    }
    TaskGroup group(pool);
    for (size_t p = 0; p < partitions; ++p) {
      group.Spawn([&, p] {
        obs::ScopedSpan task_span("merge_partition");
        if (Status st = ctx.ControlStatus(); !st.ok()) {
          merge_statuses[p] = std::move(st);
          return;
        }
        uint64_t cells_absorbed = 0;
        // Seed from worker 0's shard (its arena is exclusive to this
        // partition, so moving it is race-free) and fold the rest in.
        CellStore shard = std::move(partials[0][p]);
        CubeStats& my_stats = merge_stats[p];
        Status status = Status::OK();
        for (size_t t = 1; t < threads; ++t) {
          CellStore& part = partials[t][p];
          const CellStore::Stats& ps = part.stats();
          shard.MutableStats().probes += ps.probes;
          shard.MutableStats().max_probe =
              std::max(shard.MutableStats().max_probe, ps.max_probe);
          shard.MutableStats().rehashes += ps.rehashes;
          shard.MutableStats().heap_state_allocs += ps.heap_state_allocs;
          part.ForEach([&](const uint64_t* key, const char* block) {
            ++cells_absorbed;
            char* dst = shard.Find(key);
            if (dst == nullptr) {
              shard.InsertClone(key, block);
            } else {
              Status st = cc.MergeCell(dst, block, &my_stats);
              if (!st.ok() && status.ok()) status = std::move(st);
            }
          });
        }
        my_stats.hash_cells += shard.size();
        if (task_span.active()) {
          task_span.Attr("partition", static_cast<uint64_t>(p));
          task_span.Attr("cells_absorbed", cells_absorbed);
          task_span.Attr("cells", static_cast<uint64_t>(shard.size()));
        }
        core_shards[p] = std::move(shard);
        merge_statuses[p] = std::move(status);
      });
    }
    group.Wait();
  }
  double merge_seconds = SecondsSince(merge_start);
  partials.clear();  // shards from t >= 1 were cloned; release them
  for (const Status& st : merge_statuses) {
    DATACUBE_RETURN_IF_ERROR(st);
  }

  // ---- Phase 3: parallel lattice cascade, one task per non-core node,
  // spawned as soon as its parent is done.
  LatticePlan plan = PlanLattice(ctx.sets, cc.codec.Cardinalities());
  // PlanLattice normalizes to the same canonical order as ctx.sets, so node
  // i corresponds to ctx.sets[i].
  size_t num_sets = ctx.sets.size();
  size_t full_index = static_cast<size_t>(ctx.full_set_index);
  SetStores maps;
  maps.reserve(num_sets);
  for (size_t i = 0; i < num_sets; ++i) maps.push_back(cc.MakeStore());

  std::vector<std::vector<size_t>> children(num_sets);
  for (size_t i = 0; i < num_sets; ++i) {
    if (plan.nodes[i].parent >= 0) {
      children[static_cast<size_t>(plan.nodes[i].parent)].push_back(i);
    }
  }
  std::vector<CubeStats> node_stats(num_sets);
  std::vector<Status> node_statuses(num_sets, Status::OK());
  std::atomic<uint64_t> cascade_tasks{0};
  auto cascade_start = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan cascade_span("parallel_cascade");
    if (cascade_span.active()) {
      cascade_span.Attr("sets", static_cast<uint64_t>(num_sets));
    }
    TaskGroup group(pool);
    // Cascade tasks re-enter run_node to spawn their children; the explicit
    // group.Wait() below keeps it alive until every task has finished.
    std::function<void(size_t)> run_node = [&](size_t i) {
      cascade_tasks.fetch_add(1, std::memory_order_relaxed);
      if (Status st = ctx.ControlStatus(); !st.ok()) {
        // Record and stop descending; unspawned children are fine because
        // the coordinator returns this error after the barrier.
        node_statuses[i] = std::move(st);
        return;
      }
      const LatticePlan::Node& node = plan.nodes[i];
      // The span stays open while children are spawned below, so child
      // cascade spans stitch under this one — the rendered tree mirrors the
      // lattice fold DAG.
      obs::ScopedSpan task_span("cascade_set");
      uint64_t cells_absorbed = 0;
      CubeStats& my_stats = node_stats[i];
      Status status = Status::OK();
      if (node.parent < 0) {
        maps[i] = FlatGroupBy(cc, node.set, &my_stats);
      } else {
        CellStore& cells = maps[i];
        std::vector<uint64_t> mask = cc.codec.MaskForSet(node.set);
        std::vector<uint64_t> key(cc.words);
        auto fold_from = [&](const CellStore& parent_cells) {
          parent_cells.ForEach(
              [&](const uint64_t* parent_key, const char* parent_block) {
                ++cells_absorbed;
                MaskKey(parent_key, mask, key.data());
                Status st = cc.MergeCell(cells.FindOrInsert(key.data()),
                                         parent_block, &my_stats);
                if (!st.ok() && status.ok()) status = std::move(st);
              });
        };
        if (static_cast<size_t>(node.parent) == full_index) {
          for (const CellStore& shard : core_shards) fold_from(shard);
        } else {
          fold_from(maps[static_cast<size_t>(node.parent)]);
        }
      }
      if (task_span.active()) {
        task_span.Attr("set",
                       GroupingSetToString(node.set, cc.ctx->key_names));
        task_span.Attr("cells_absorbed", cells_absorbed);
        task_span.Attr("cells", static_cast<uint64_t>(maps[i].size()));
        task_span.Attr("from_base", node.parent < 0 ? "true" : "false");
      }
      node_statuses[i] = std::move(status);
      for (size_t c : children[i]) {
        group.Spawn([&run_node, c] { run_node(c); });
      }
    };
    // Roots: the core's children (the core itself is already computed as
    // shards) and any base-scan nodes.
    for (size_t i = 0; i < num_sets; ++i) {
      if (i == full_index) continue;
      bool is_root = plan.nodes[i].parent < 0 ||
                     static_cast<size_t>(plan.nodes[i].parent) == full_index;
      if (is_root) {
        group.Spawn([&run_node, i] { run_node(i); });
      }
    }
    group.Wait();
  }
  double cascade_seconds = SecondsSince(cascade_start);
  for (const Status& st : node_statuses) {
    DATACUBE_RETURN_IF_ERROR(st);
  }

  // Stitch the partitioned core into its SetStores slot: shards are
  // key-disjoint, so this adopts blocks instead of cloning states.
  CellStore& full = maps[full_index];
  full = std::move(core_shards[0]);
  for (size_t p = 1; p < partitions; ++p) {
    full.AbsorbDisjoint(std::move(core_shards[p]));
  }

  if (stats != nullptr) {
    ++stats->input_scans;  // the morsels jointly scanned the input once
    for (const CubeStats& ps : scan_stats) FoldStats(ps, stats);
    for (const CubeStats& ps : merge_stats) FoldStats(ps, stats);
    for (const CubeStats& ps : node_stats) FoldStats(ps, stats);
    for (uint64_t m : scan_morsels) stats->morsels_dispatched += m;
    stats->partitions = partitions;
    stats->merge_tasks = partitions;
    stats->cascade_tasks = cascade_tasks.load(std::memory_order_relaxed);
    stats->scan_seconds = scan_seconds;
    stats->merge_seconds = merge_seconds;
    stats->cascade_seconds = cascade_seconds;
    stats->threads_used = static_cast<int>(threads);
  }
  return maps;
}

}  // namespace cube_internal
}  // namespace datacube
