#include "datacube/cube/view_selection.h"

#include <algorithm>
#include <limits>

namespace datacube {

double EstimateViewSize(GroupingSet set,
                        const std::vector<size_t>& cardinalities,
                        size_t base_rows) {
  double size = 1.0;
  for (size_t k = 0; k < cardinalities.size(); ++k) {
    if (IsGrouped(set, k)) size *= static_cast<double>(cardinalities[k]);
  }
  return std::min(size, static_cast<double>(base_rows));
}

Result<ViewSelection> SelectViewsGreedy(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, size_t max_views) {
  if (num_dims > 16) {
    return Status::InvalidArgument(
        "greedy view selection enumerates the lattice; num_dims must be <= 16");
  }
  if (cardinalities.size() != num_dims) {
    return Status::InvalidArgument("cardinalities must have num_dims entries");
  }
  if (max_views == 0) {
    return Status::InvalidArgument("max_views must be >= 1");
  }
  size_t lattice = 1ULL << num_dims;
  std::vector<double> size_of(lattice);
  for (GroupingSet v = 0; v < lattice; ++v) {
    size_of[v] = EstimateViewSize(v, cardinalities, base_rows);
  }

  ViewSelection selection;
  GroupingSet top = FullSet(num_dims);
  selection.views.push_back(top);
  selection.benefits.push_back(0.0);

  // current_cost[w]: cheapest-ancestor cost of query w under the current
  // selection.
  std::vector<double> current_cost(lattice, size_of[top]);

  while (selection.views.size() < std::min<size_t>(max_views, lattice)) {
    GroupingSet best_view = top;
    double best_benefit = -1.0;
    for (GroupingSet v = 0; v < lattice; ++v) {
      if (std::find(selection.views.begin(), selection.views.end(), v) !=
          selection.views.end()) {
        continue;
      }
      // Benefit of materializing v: every query w ⊆ v whose current cost
      // exceeds |v| improves to |v|.
      double benefit = 0.0;
      for (GroupingSet w = v;; w = (w - 1) & v) {  // all submasks of v
        if (current_cost[w] > size_of[v]) {
          benefit += current_cost[w] - size_of[v];
        }
        if (w == 0) break;
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_view = v;
      }
    }
    if (best_benefit <= 0.0) break;  // nothing left to gain
    selection.views.push_back(best_view);
    selection.benefits.push_back(best_benefit);
    for (GroupingSet w = best_view;; w = (w - 1) & best_view) {
      current_cost[w] = std::min(current_cost[w], size_of[best_view]);
      if (w == 0) break;
    }
  }

  for (GroupingSet w = 0; w < lattice; ++w) {
    selection.total_query_cost += current_cost[w];
  }
  return selection;
}

Result<ViewSelection> SelectViewsGreedyBySpace(
    size_t num_dims, const std::vector<size_t>& cardinalities,
    size_t base_rows, double space_budget) {
  if (num_dims > 16) {
    return Status::InvalidArgument(
        "greedy view selection enumerates the lattice; num_dims must be <= 16");
  }
  if (cardinalities.size() != num_dims) {
    return Status::InvalidArgument("cardinalities must have num_dims entries");
  }
  if (space_budget < 0) {
    return Status::InvalidArgument("space budget must be >= 0");
  }
  size_t lattice = 1ULL << num_dims;
  std::vector<double> size_of(lattice);
  for (GroupingSet v = 0; v < lattice; ++v) {
    size_of[v] = EstimateViewSize(v, cardinalities, base_rows);
  }

  ViewSelection selection;
  GroupingSet top = FullSet(num_dims);
  selection.views.push_back(top);
  selection.benefits.push_back(0.0);
  std::vector<double> current_cost(lattice, size_of[top]);
  double budget_left = space_budget;

  while (true) {
    GroupingSet best_view = top;
    double best_ratio = 0.0;
    double best_benefit = 0.0;
    for (GroupingSet v = 0; v < lattice; ++v) {
      if (size_of[v] > budget_left) continue;
      if (std::find(selection.views.begin(), selection.views.end(), v) !=
          selection.views.end()) {
        continue;
      }
      double benefit = 0.0;
      for (GroupingSet w = v;; w = (w - 1) & v) {
        if (current_cost[w] > size_of[v]) {
          benefit += current_cost[w] - size_of[v];
        }
        if (w == 0) break;
      }
      double ratio = size_of[v] > 0 ? benefit / size_of[v] : benefit;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_benefit = benefit;
        best_view = v;
      }
    }
    if (best_ratio <= 0.0) break;
    selection.views.push_back(best_view);
    selection.benefits.push_back(best_benefit);
    budget_left -= size_of[best_view];
    for (GroupingSet w = best_view;; w = (w - 1) & best_view) {
      current_cost[w] = std::min(current_cost[w], size_of[best_view]);
      if (w == 0) break;
    }
  }

  for (GroupingSet w = 0; w < lattice; ++w) {
    selection.total_query_cost += current_cost[w];
  }
  return selection;
}

double LatticeByteCostModel::CellsOf(GroupingSet set) const {
  for (const auto& [s, cells] : observed_cells) {
    if (s == set) return cells;
  }
  return EstimateViewSize(set, cardinalities, base_rows);
}

Result<ViewSelection> SelectViewsByByteBudget(const LatticeByteCostModel& model,
                                              double budget_bytes) {
  if (model.num_dims > 16) {
    return Status::InvalidArgument(
        "greedy view selection enumerates the lattice; num_dims must be <= 16");
  }
  if (model.cardinalities.size() != model.num_dims) {
    return Status::InvalidArgument("cardinalities must have num_dims entries");
  }
  if (model.bytes_per_cell <= 0) {
    return Status::InvalidArgument("bytes_per_cell must be > 0");
  }
  if (budget_bytes < 0) {
    return Status::InvalidArgument("byte budget must be >= 0");
  }
  size_t lattice = 1ULL << model.num_dims;
  GroupingSet top = FullSet(model.num_dims);

  // Candidate views = the query workload. Empty means the full lattice.
  std::vector<GroupingSet> candidates = model.candidates;
  if (candidates.empty()) {
    candidates.reserve(lattice);
    for (GroupingSet v = 0; v < lattice; ++v) candidates.push_back(v);
  } else {
    for (GroupingSet v : candidates) {
      if (v >= lattice) {
        return Status::InvalidArgument(
            "candidate grouping set references columns beyond num_dims");
      }
    }
    if (std::find(candidates.begin(), candidates.end(), top) ==
        candidates.end()) {
      return Status::InvalidArgument(
          "byte-budget selection requires the core grouping set among the "
          "candidates (the top view answers everything else)");
    }
  }

  std::vector<double> cells_of(lattice), bytes_of(lattice);
  for (GroupingSet v = 0; v < lattice; ++v) {
    cells_of[v] = model.CellsOf(v);
    bytes_of[v] = cells_of[v] * model.bytes_per_cell;
  }
  std::vector<char> is_candidate(lattice, 0);
  for (GroupingSet v : candidates) is_candidate[v] = 1;

  // The core is mandatory — it is the only view guaranteed to answer every
  // query, so it is admitted even when it alone exceeds the budget (a
  // too-small budget degrades to "materialize just the core").
  ViewSelection selection;
  selection.views.push_back(top);
  selection.benefits.push_back(0.0);
  selection.view_bytes.push_back(bytes_of[top]);
  selection.selected_bytes = bytes_of[top];

  // current_cost[w]: cheapest-ancestor cost (in cells scanned) of candidate
  // query w under the current selection. Non-candidate sets never contribute
  // benefit — the selection serves the requested workload, not the full
  // lattice.
  std::vector<double> current_cost(lattice, cells_of[top]);
  std::vector<char> selected(lattice, 0);
  selected[top] = 1;

  while (true) {
    GroupingSet best_view = top;
    double best_ratio = 0.0;
    double best_benefit = 0.0;
    for (GroupingSet v : candidates) {
      if (selected[v]) continue;
      if (selection.selected_bytes + bytes_of[v] > budget_bytes) continue;
      double benefit = 0.0;
      for (GroupingSet w = v;; w = (w - 1) & v) {  // all submasks of v
        if (is_candidate[w] && current_cost[w] > cells_of[v]) {
          benefit += current_cost[w] - cells_of[v];
        }
        if (w == 0) break;
      }
      double ratio = bytes_of[v] > 0 ? benefit / bytes_of[v] : benefit;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_benefit = benefit;
        best_view = v;
      }
    }
    if (best_ratio <= 0.0) break;
    selected[best_view] = 1;
    selection.views.push_back(best_view);
    selection.benefits.push_back(best_benefit);
    selection.view_bytes.push_back(bytes_of[best_view]);
    selection.selected_bytes += bytes_of[best_view];
    for (GroupingSet w = best_view;; w = (w - 1) & best_view) {
      current_cost[w] = std::min(current_cost[w], cells_of[best_view]);
      if (w == 0) break;
    }
  }

  for (GroupingSet w : candidates) {
    selection.total_query_cost += current_cost[w];
  }
  return selection;
}

GroupingSet CheapestAncestor(const ViewSelection& selection,
                             GroupingSet target,
                             const std::vector<size_t>& cardinalities,
                             size_t base_rows) {
  GroupingSet best = selection.views.front();
  double best_size = EstimateViewSize(best, cardinalities, base_rows);
  for (GroupingSet v : selection.views) {
    if ((v & target) != target) continue;
    double size = EstimateViewSize(v, cardinalities, base_rows);
    if (size < best_size) {
      best = v;
      best_size = size;
    }
  }
  return best;
}

}  // namespace datacube
