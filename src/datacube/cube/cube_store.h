#ifndef DATACUBE_CUBE_CUBE_STORE_H_
#define DATACUBE_CUBE_CUBE_STORE_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/cube_spec.h"
#include "datacube/cube/grouping_set.h"
#include "datacube/table/table.h"

namespace datacube {

/// The common surface of every cube storage engine: the fully maintained
/// MaterializedCube, the budget-selected PartialCube, and the
/// time-partitioned PartitionedCube. Query, ingest, and checkpoint code
/// programs against this interface instead of hard-coding the monolithic
/// type, so a serving layer can mount any of the three interchangeably.
///
/// Semantics shared by all implementations:
///  * ApplyInsert folds one full-width base row in via the Section 6
///    incremental maintenance path (never a rebuild).
///  * QuerySet answers GROUP BY over one grouping set of the store's spec,
///    returning full-width grouping columns (ALL in aggregated-away
///    positions) plus the aggregate values.
///  * ToTable is the store's current relational form — every grouping set
///    it serves, concatenated.
///  * SaveToFile checkpoints exact aggregate scratchpads so maintenance
///    keeps working after a reload. MaterializedCube and PartialCube write
///    one file; PartitionedCube writes a directory (one checkpoint per
///    partition delta plus a manifest).
class CubeStoreInterface {
 public:
  virtual ~CubeStoreInterface() = default;

  /// The cube definition this store was built with.
  virtual const CubeSpec& spec() const = 0;

  /// Storage kind tag: "materialized", "partial", or "partitioned".
  virtual const char* kind() const = 0;

  /// Number of live base rows backing the store.
  virtual size_t num_base_rows() const = 0;

  /// Incremental insert of one full-width base row.
  virtual Status ApplyInsert(const std::vector<Value>& row) = 0;

  /// Answers GROUP BY over `target` (a bitmask over the spec's grouping
  /// columns). Non-const: implementations may record per-query stats.
  virtual Result<Table> QuerySet(GroupingSet target) = 0;

  /// The store's current relational form.
  virtual Result<Table> ToTable() = 0;

  /// Checkpoints the store (file or directory, by implementation).
  virtual Status SaveToFile(const std::string& path) const = 0;
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_CUBE_STORE_H_
