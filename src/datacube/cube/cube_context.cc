#include <algorithm>
#include <unordered_set>

#include "datacube/agg/distinct.h"
#include "datacube/agg/registry.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

std::vector<Value> CubeContext::MaskedKey(size_t row, GroupingSet set) const {
  std::vector<Value> key(num_keys, Value::All());
  for (size_t k = 0; k < num_keys; ++k) {
    if (IsGrouped(set, k)) key[k] = key_columns[k][row];
  }
  return key;
}

std::vector<Value> CubeContext::ProjectKey(const std::vector<Value>& key,
                                           GroupingSet set) const {
  std::vector<Value> out(num_keys, Value::All());
  for (size_t k = 0; k < num_keys; ++k) {
    if (IsGrouped(set, k)) out[k] = key[k];
  }
  return out;
}

Cell CubeContext::NewCell() const {
  Cell cell;
  cell.states.reserve(aggs.size());
  for (const AggregateFunctionPtr& agg : aggs) {
    cell.states.push_back(agg->Init());
  }
  return cell;
}

void CubeContext::IterRow(Cell* cell, size_t row, CubeStats* stats) const {
  if (!cell->has_repr) {
    cell->repr_row = row;
    cell->has_repr = true;
  }
  ++cell->count;
  Value argv[8];
  for (size_t a = 0; a < aggs.size(); ++a) {
    const auto& arg_columns = agg_args[a];
    size_t nargs = arg_columns.size();
    for (size_t i = 0; i < nargs; ++i) argv[i] = arg_columns[i][row];
    aggs[a]->Iter(cell->states[a].get(), argv, nargs);
  }
  if (stats != nullptr) stats->iter_calls += aggs.size();
}

Status CubeContext::RemoveRow(Cell* cell, size_t row) const {
  Value argv[8];
  for (size_t a = 0; a < aggs.size(); ++a) {
    const auto& arg_columns = agg_args[a];
    size_t nargs = arg_columns.size();
    for (size_t i = 0; i < nargs; ++i) argv[i] = arg_columns[i][row];
    DATACUBE_RETURN_IF_ERROR(
        aggs[a]->Remove(cell->states[a].get(), argv, nargs));
  }
  return Status::OK();
}

Status CubeContext::MergeCell(Cell* dst, const Cell& src,
                              CubeStats* stats) const {
  if (!dst->has_repr && src.has_repr) {
    dst->repr_row = src.repr_row;
    dst->has_repr = true;
  }
  dst->count += src.count;
  for (size_t a = 0; a < aggs.size(); ++a) {
    DATACUBE_RETURN_IF_ERROR(
        aggs[a]->Merge(dst->states[a].get(), src.states[a].get()));
  }
  if (stats != nullptr) stats->merge_calls += aggs.size();
  return Status::OK();
}

Cell CubeContext::CloneCell(const Cell& cell) const {
  Cell out;
  out.count = cell.count;
  out.repr_row = cell.repr_row;
  out.has_repr = cell.has_repr;
  out.states.reserve(cell.states.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    out.states.push_back(aggs[a]->Clone(cell.states[a].get()));
  }
  return out;
}

Result<CubeContext> BuildCubeContext(const Table& input, const CubeSpec& spec,
                                     bool materialize_ref_keys) {
  CubeContext ctx;
  ctx.input = &input;
  ctx.spec = &spec;

  std::vector<GroupExpr> group_exprs = spec.AllGroupExprs();
  ctx.num_keys = group_exprs.size();
  if (ctx.num_keys >= 64) {
    return Status::InvalidArgument("at most 63 grouping columns supported");
  }
  // Evaluate grouping expressions.
  std::unordered_set<std::string> used_names;
  for (GroupExpr& g : group_exprs) {
    if (g.expr == nullptr) {
      return Status::InvalidArgument("null grouping expression");
    }
    DATACUBE_RETURN_IF_ERROR(g.expr->Bind(input.schema()));
    std::string name = g.name.empty() ? g.expr->ToString() : g.name;
    if (!used_names.insert(name).second) {
      return Status::AlreadyExists("duplicate grouping column name: " + name);
    }
    ctx.key_names.push_back(name);
    ctx.key_types.push_back(g.expr->output_type());
    bool is_ref = g.expr->kind() == Expr::Kind::kColumnRef;
    ctx.key_source_columns.push_back(
        is_ref ? &input.column(g.expr->column_index()) : nullptr);
    if (is_ref && !materialize_ref_keys) {
      ctx.key_columns.emplace_back();
      continue;
    }
    DATACUBE_ASSIGN_OR_RETURN(std::vector<Value> col,
                              g.expr->EvaluateAll(input));
    ctx.key_columns.push_back(std::move(col));
  }

  // Instantiate aggregates and evaluate their argument expressions.
  if (spec.aggregates.empty()) {
    return Status::InvalidArgument("cube spec has no aggregates");
  }
  for (const AggregateSpec& a : spec.aggregates) {
    DATACUBE_ASSIGN_OR_RETURN(
        AggregateFunctionPtr fn,
        AggregateRegistry::Global().Make(a.function, a.params));
    if (a.args.size() > 8) {
      return Status::InvalidArgument("aggregates take at most 8 arguments");
    }
    if (fn->num_args() != static_cast<int>(a.args.size())) {
      return Status::InvalidArgument(
          a.function + " expects " + std::to_string(fn->num_args()) +
          " argument(s), got " + std::to_string(a.args.size()));
    }
    std::vector<DataType> arg_types;
    std::vector<std::vector<Value>> arg_columns;
    std::vector<const Column*> arg_sources;
    for (const ExprPtr& arg : a.args) {
      DATACUBE_RETURN_IF_ERROR(arg->Bind(input.schema()));
      arg_types.push_back(arg->output_type());
      arg_sources.push_back(arg->kind() == Expr::Kind::kColumnRef
                                ? &input.column(arg->column_index())
                                : nullptr);
      DATACUBE_ASSIGN_OR_RETURN(std::vector<Value> col,
                                arg->EvaluateAll(input));
      arg_columns.push_back(std::move(col));
    }
    DATACUBE_ASSIGN_OR_RETURN(DataType result_type, fn->ResultType(arg_types));
    if (a.distinct) fn = MakeDistinct(std::move(fn));
    ctx.all_mergeable = ctx.all_mergeable && fn->supports_merge();
    ctx.aggs.push_back(std::move(fn));
    ctx.agg_result_types.push_back(result_type);
    ctx.agg_args.push_back(std::move(arg_columns));
    ctx.agg_source_columns.push_back(std::move(arg_sources));
  }

  // Bind decorations and validate determinants.
  for (const Decoration& d : spec.decorations) {
    if (d.expr == nullptr) {
      return Status::InvalidArgument("null decoration expression");
    }
    DATACUBE_RETURN_IF_ERROR(d.expr->Bind(input.schema()));
    if (d.determinant >> ctx.num_keys) {
      return Status::InvalidArgument(
          "decoration determinant references unknown grouping column");
    }
  }

  ctx.sets = spec.GroupingSets();
  if (ctx.sets.empty()) {
    return Status::InvalidArgument("cube spec has no grouping sets");
  }
  GroupingSet full = FullSet(ctx.num_keys);
  for (size_t i = 0; i < ctx.sets.size(); ++i) {
    if (ctx.sets[i] >> ctx.num_keys) {
      return Status::InvalidArgument(
          "grouping set references unknown grouping column");
    }
    if (ctx.sets[i] == full) ctx.full_set_index = static_cast<int>(i);
  }
  return ctx;
}

CellMap HashGroupBy(const CubeContext& ctx, GroupingSet set, CubeStats* stats) {
  obs::ScopedSpan span("hash_group_by");
  CellMap cells;
  uint64_t rehashes = 0;
  size_t buckets = cells.bucket_count();
  for (size_t row = 0; row < ctx.num_rows(); ++row) {
    std::vector<Value> key = ctx.MaskedKey(row, set);
    auto [it, inserted] = cells.try_emplace(std::move(key));
    if (inserted) {
      it->second = ctx.NewCell();
      if (cells.bucket_count() != buckets) {
        buckets = cells.bucket_count();
        ++rehashes;
      }
    }
    ctx.IterRow(&it->second, row, stats);
  }
  if (stats != nullptr) {
    ++stats->input_scans;
    stats->hash_cells += cells.size();
    stats->hash_rehashes += rehashes;
  }
  if (span.active()) {
    span.Attr("set", GroupingSetToString(set, ctx.key_names));
    span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    span.Attr("cells", static_cast<uint64_t>(cells.size()));
    span.Attr("rehashes", rehashes);
  }
  return cells;
}

std::vector<size_t> KeyCardinalities(const CubeContext& ctx) {
  std::vector<size_t> cards;
  cards.reserve(ctx.num_keys);
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    if (ctx.key_columns[k].empty() && ctx.key_source_columns[k] != nullptr &&
        ctx.num_rows() > 0) {
      // Lazily materialized column reference: count on the table column.
      // NULL and a literal ALL each count as one distinct value, matching
      // the Value-set semantics below.
      const Column& col = *ctx.key_source_columns[k];
      size_t n = col.CountDistinct() + (col.null_count() > 0 ? 1 : 0) +
                 (col.all_count() > 0 ? 1 : 0);
      cards.push_back(std::max<size_t>(1, n));
      continue;
    }
    std::unordered_set<Value, ValueHash> distinct;
    for (const Value& v : ctx.key_columns[k]) distinct.insert(v);
    cards.push_back(std::max<size_t>(1, distinct.size()));
  }
  return cards;
}

LatticePlan PlanLattice(const std::vector<GroupingSet>& sets,
                        const std::vector<size_t>& column_cardinalities,
                        ParentPolicy policy) {
  LatticePlan plan;
  std::vector<GroupingSet> ordered = NormalizeSets(sets);
  auto estimate = [&](GroupingSet s) {
    double est = 1.0;
    for (size_t k = 0; k < column_cardinalities.size(); ++k) {
      if (IsGrouped(s, k)) est *= static_cast<double>(column_cardinalities[k]);
    }
    return est;
  };
  for (GroupingSet s : ordered) {
    LatticePlan::Node node;
    node.set = s;
    node.est_cells = estimate(s);
    // Choose the already-planned strict superset with the fewest estimated
    // cells (Section 5: aggregate from the smallest available parent) — or,
    // under the ablation policy, the largest one.
    double best = 0;
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      const LatticePlan::Node& cand = plan.nodes[i];
      bool superset = (cand.set & s) == s && cand.set != s;
      if (!superset) continue;
      bool better = policy == ParentPolicy::kSmallestParent
                        ? cand.est_cells < best
                        : cand.est_cells > best;
      if (node.parent < 0 || better) {
        node.parent = static_cast<int>(i);
        best = cand.est_cells;
      }
    }
    plan.nodes.push_back(node);
  }
  return plan;
}

}  // namespace cube_internal
}  // namespace datacube
