#include <algorithm>
#include <numeric>

#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

namespace {

// A rollup-shaped grouping-set list is a chain under set inclusion:
// S_0 ⊋ S_1 ⊋ ... ⊋ S_L (e.g. {M,Y,C} ⊃ {M,Y} ⊃ {M} ⊃ {}). ctx.sets is in
// canonical (descending popcount) order, so it suffices to check adjacent
// containment.
bool IsChain(const std::vector<GroupingSet>& sets) {
  for (size_t i = 1; i < sets.size(); ++i) {
    if ((sets[i - 1] & sets[i]) != sets[i] || sets[i - 1] == sets[i]) {
      return false;
    }
  }
  return true;
}

// Column order that makes every chain set a prefix: coarsest set's columns
// first, then each level's newly added columns.
std::vector<size_t> ChainColumnOrder(const std::vector<GroupingSet>& sets,
                                     size_t num_keys) {
  std::vector<size_t> order;
  GroupingSet covered = 0;
  for (size_t i = sets.size(); i-- > 0;) {
    GroupingSet added = sets[i] & ~covered;
    for (size_t k = 0; k < num_keys; ++k) {
      if (IsGrouped(added, k)) order.push_back(k);
    }
    covered |= sets[i];
  }
  return order;
}

}  // namespace

// Section 5's sort-based ROLLUP: "the basic technique for computing a ROLLUP
// is to sort the table on the aggregating attributes and then compute the
// aggregate functions". One sort, one pipelined scan; sub-totals close and
// cascade upward as key prefixes change, so each input row is Iter'd exactly
// once (for mergeable aggregates) and the answer comes out in the sorted
// order drill-down reports want. Per the paper this is the "corresponding
// order-N algorithm for roll-up".
//
// Falls back to FromCore for non-chain grouping-set shapes. For holistic
// aggregates the same single sorted scan Iters each row into every open
// level instead of merging (no constant-size scratchpad to cascade).
Result<SetMaps> ComputeSortRollup(const CubeContext& ctx, CubeStats* stats) {
  if (!IsChain(ctx.sets)) {
    return ComputeFromCore(ctx, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kSortRollup;
  size_t levels = ctx.sets.size();  // finest = level 0
  std::vector<size_t> column_order = ChainColumnOrder(ctx.sets, ctx.num_keys);
  // Prefix length (in column_order positions) of each level.
  std::vector<size_t> prefix_len(levels);
  for (size_t j = 0; j < levels; ++j) {
    prefix_len[j] = static_cast<size_t>(PopCount(ctx.sets[j]));
  }

  // Sort row indices by the chain column order.
  std::vector<size_t> rows(ctx.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  {
    obs::ScopedSpan sort_span("sort_rows");
    if (sort_span.active()) {
      sort_span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    }
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      for (size_t k : column_order) {
        int cmp = ctx.key_columns[k][a].Compare(ctx.key_columns[k][b]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
  }
  if (stats != nullptr) ++stats->input_scans;
  obs::ScopedSpan scan_span("pipelined_rollup_scan");
  if (scan_span.active()) {
    scan_span.Attr("levels", static_cast<uint64_t>(levels));
    scan_span.Attr("mergeable", ctx.all_mergeable ? "true" : "false");
  }

  SetMaps maps(levels);
  struct Open {
    Cell cell;
    std::vector<Value> key;  // full-width masked key
    bool active = false;
  };
  std::vector<Open> open(levels);

  bool mergeable = ctx.all_mergeable;

  // Closes level j: emits its cell and (mergeable path) folds it into the
  // next coarser open level.
  auto close_level = [&](size_t j) -> Status {
    Open& o = open[j];
    if (!o.active) return Status::OK();
    if (mergeable && j + 1 < levels) {
      if (!open[j + 1].active) {
        open[j + 1].cell = ctx.NewCell();
        open[j + 1].key = ctx.ProjectKey(o.key, ctx.sets[j + 1]);
        open[j + 1].active = true;
      }
      DATACUBE_RETURN_IF_ERROR(ctx.MergeCell(&open[j + 1].cell, o.cell, stats));
    }
    maps[j].emplace(std::move(o.key), std::move(o.cell));
    o = Open{};
    return Status::OK();
  };

  size_t prev_row = 0;
  bool have_prev = false;
  for (size_t r : rows) {
    // Longest matching prefix (in column_order) with the previous row.
    size_t match = 0;
    if (have_prev) {
      while (match < column_order.size() &&
             ctx.key_columns[column_order[match]][r] ==
                 ctx.key_columns[column_order[match]][prev_row]) {
        ++match;
      }
    }
    // Close every level whose prefix no longer matches, finest first.
    if (have_prev) {
      for (size_t j = 0; j < levels && prefix_len[j] > match; ++j) {
        DATACUBE_RETURN_IF_ERROR(close_level(j));
      }
    }
    // Open missing levels for this row and fold the row in.
    if (mergeable) {
      if (!open[0].active) {
        open[0].cell = ctx.NewCell();
        open[0].key = ctx.MaskedKey(r, ctx.sets[0]);
        open[0].active = true;
      }
      ctx.IterRow(&open[0].cell, r, stats);
    } else {
      for (size_t j = 0; j < levels; ++j) {
        if (!open[j].active) {
          open[j].cell = ctx.NewCell();
          open[j].key = ctx.MaskedKey(r, ctx.sets[j]);
          open[j].active = true;
        }
        ctx.IterRow(&open[j].cell, r, stats);
      }
    }
    prev_row = r;
    have_prev = true;
  }
  for (size_t j = 0; j < levels; ++j) {
    DATACUBE_RETURN_IF_ERROR(close_level(j));
  }
  return maps;
}

}  // namespace cube_internal
}  // namespace datacube
