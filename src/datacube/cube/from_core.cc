#include <optional>

#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

// Shared cascade over the smallest-parent lattice plan. If `core` is
// provided it seeds the full grouping set (used by the parallel path, which
// computes the core by merging per-partition cores); any node without a
// computed parent is grouped directly from base data.
Result<SetMaps> CascadeFromCore(const CubeContext& ctx,
                                std::optional<CellMap> core,
                                CubeStats* stats) {
  LatticePlan plan = PlanLattice(ctx.sets, KeyCardinalities(ctx));
  // PlanLattice normalizes to the same canonical order as ctx.sets, so node
  // i corresponds to ctx.sets[i].
  SetMaps maps(ctx.sets.size());
  GroupingSet full = FullSet(ctx.num_keys);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const LatticePlan::Node& node = plan.nodes[i];
    obs::ScopedSpan span("compute_set");
    if (span.active()) {
      span.Attr("set", GroupingSetToString(node.set, ctx.key_names));
      span.Attr("est_cells", node.est_cells);
    }
    if (node.set == full && core.has_value()) {
      maps[i] = std::move(*core);
      core.reset();
      if (span.active()) {
        span.Attr("source", "precomputed core");
        span.Attr("cells", static_cast<uint64_t>(maps[i].size()));
      }
      continue;
    }
    if (node.parent < 0) {
      maps[i] = HashGroupBy(ctx, node.set, stats);
      if (span.active()) {
        span.Attr("source", "base scan");
        span.Attr("cells", static_cast<uint64_t>(maps[i].size()));
      }
      continue;
    }
    const CellMap& parent_cells = maps[node.parent];
    CellMap& cells = maps[i];
    for (const auto& [parent_key, parent_cell] : parent_cells) {
      std::vector<Value> key = ctx.ProjectKey(parent_key, node.set);
      auto [it, inserted] = cells.try_emplace(std::move(key));
      if (inserted) it->second = ctx.NewCell();
      DATACUBE_RETURN_IF_ERROR(ctx.MergeCell(&it->second, parent_cell, stats));
    }
    if (span.active()) {
      span.Attr("source",
                "merge from " +
                    GroupingSetToString(
                        plan.nodes[static_cast<size_t>(node.parent)].set,
                        ctx.key_names));
      span.Attr("parent_cells", static_cast<uint64_t>(parent_cells.size()));
      span.Attr("cells", static_cast<uint64_t>(cells.size()));
    }
  }
  return maps;
}

// Section 5's recommended strategy for distributive and algebraic
// aggregates: compute the GROUP BY core once, then compute each
// super-aggregate by folding scratchpads ("Iter_super") upward through the
// lattice, choosing for each node the smallest already-computed parent
// ("the algorithm will be most efficient if it aggregates the smaller of
// the two"). This reduces Iter calls from T×2^N to T, plus merges roughly
// proportional to the core size.
//
// If any aggregate does not support Merge (holistic), the whole computation
// falls back to per-set scans, matching the paper's trichotomy ("we know of
// no more efficient way of computing super-aggregates of holistic
// functions").
Result<SetMaps> ComputeFromCore(const CubeContext& ctx, CubeStats* stats) {
  if (!ctx.all_mergeable) {
    return ComputeUnionGroupBy(ctx, stats);
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kFromCore;
  return CascadeFromCore(ctx, std::nullopt, stats);
}

}  // namespace cube_internal
}  // namespace datacube
