#ifndef DATACUBE_CUBE_CUBE_SPEC_H_
#define DATACUBE_CUBE_CUBE_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "datacube/common/exec_control.h"
#include "datacube/cube/grouping_set.h"
#include "datacube/expr/expr.h"

namespace datacube {

/// One grouping column: an expression over the input (a plain column or a
/// computed category per the paper's histogram extension, e.g. Day(Time))
/// plus its output name.
struct GroupExpr {
  ExprPtr expr;
  std::string name;
};

/// One aggregate in the select list: a function from AggregateRegistry, its
/// argument expressions (empty for count_star), optional constant parameters
/// (e.g. max_n(x, 3) → params {3}), optional DISTINCT, and the output
/// column name.
struct AggregateSpec {
  std::string function;
  std::vector<ExprPtr> args;
  std::vector<Value> params;
  bool distinct = false;
  std::string output_name;
};

/// A decoration column (Section 3.5): an expression functionally dependent
/// on some of the grouping columns. `determinant` is the bitmask of grouping
/// columns that determine it; the decoration value appears in an output row
/// only when the row's grouping set covers the determinant, otherwise it is
/// NULL — exactly the Table 7 continent rule.
struct Decoration {
  ExprPtr expr;
  std::string name;
  GroupingSet determinant = 0;
};

/// How super-aggregate rows mark aggregated-away columns.
enum class AllMode {
  /// The paper's Section 3.3 design: a distinct ALL token.
  kAllToken,
  /// The Section 3.4 minimalist design (SQL Server 6.5 / ISO SQL): NULL in
  /// the data column, discriminated by GROUPING() columns.
  kNullWithGrouping,
};

/// Which algorithm computes the cube (Section 5). kAuto picks SortRollup for
/// pure rollups, FromCore when every aggregate supports Merge, and
/// UnionGroupBy otherwise.
enum class CubeAlgorithm {
  kAuto,
  /// The paper's "2^N-algorithm": every input row Iters into all 2^N
  /// matching cells. Works for holistic functions.
  kNaive2N,
  /// The Section 2 baseline: one independent GROUP BY scan per grouping
  /// set, unioned ("64 scans of the data, 64 sorts or hashes, and a long
  /// wait").
  kUnionGroupBy,
  /// Compute the GROUP BY core once; cascade scratchpads through the
  /// lattice with Merge (Iter_super), each node from its smallest computed
  /// parent. Requires supports_merge() on every aggregate.
  kFromCore,
  /// Dense N-dimensional array with dictionary-encoded dimensions; projects
  /// one dimension at a time, smallest cardinality first (Section 5's array
  /// technique). Requires merge support and bounded Π(C_i+1).
  kArrayCube,
  /// Sort-based pipelined ROLLUP (Section 5: "sorting is especially
  /// convenient for ROLLUP"). Only for rollup-shaped specs.
  kSortRollup,
  /// Compute the core by sorting instead of hashing — Section 5's "use
  /// sorting or hybrid hashing to organize the data by value and then
  /// aggregate with a sequential scan of the sorted data" — then cascade
  /// the lattice as kFromCore does. No hash table is built for the core,
  /// so peak memory is the sort permutation plus one open cell.
  kSortFromCore,
};

const char* CubeAlgorithmName(CubeAlgorithm a);

/// The cube operator's full specification — the programmatic form of
///   SELECT <groups>, <aggregates> FROM t
///   GROUP BY <group_by...> ROLLUP <rollup...> CUBE <cube...>
/// (the paper's Section 3.2 syntax). The grouping columns are the
/// concatenation group_by ++ rollup ++ cube, and the grouping sets are the
/// Section 3.1 compound algebra unless `explicit_sets` (GROUPING SETS) is
/// given.
struct CubeSpec {
  std::vector<GroupExpr> group_by;
  std::vector<GroupExpr> rollup;
  std::vector<GroupExpr> cube;
  std::vector<AggregateSpec> aggregates;
  std::vector<Decoration> decorations;

  /// Explicit GROUPING SETS over the concatenated grouping columns;
  /// overrides the compound algebra when set.
  std::optional<std::vector<GroupingSet>> explicit_sets;

  AllMode all_mode = AllMode::kAllToken;
  /// Emit one boolean GROUPING(<col>) column per grouping column (the
  /// paper's Section 3.3/3.4 discriminator function).
  bool add_grouping_columns = false;
  /// Emit a single INT64 "grouping_id" column encoding the whole grouping
  /// set as a bitmask (bit k set when grouping column k is aggregated away)
  /// — the ISO SQL GROUPING_ID companion to GROUPING().
  bool add_grouping_id = false;

  /// All grouping columns in output order.
  std::vector<GroupExpr> AllGroupExprs() const {
    std::vector<GroupExpr> out = group_by;
    out.insert(out.end(), rollup.begin(), rollup.end());
    out.insert(out.end(), cube.begin(), cube.end());
    return out;
  }

  /// The grouping sets this spec produces (normalized).
  std::vector<GroupingSet> GroupingSets() const {
    if (explicit_sets.has_value()) return NormalizeSets(*explicit_sets);
    return ComposeGroupingSets(group_by.size(), rollup.size(), cube.size());
  }
};

/// Execution options.
struct CubeOptions {
  CubeAlgorithm algorithm = CubeAlgorithm::kAuto;
  /// Partition-parallel execution (Section 5's parallel note): > 1 runs the
  /// morsel-driven scan / radix-partitioned merge / parallel lattice
  /// cascade on the shared process-wide ThreadPool. Requires merge support;
  /// falls back to serial otherwise. 1 (the default) is strictly serial;
  /// <= 0 resolves to DATACUBE_THREADS when set, else
  /// hardware_concurrency().
  int num_threads = 1;
  /// Rows per morsel on the parallel scan: workers pull fixed-size row
  /// ranges from a shared atomic cursor, so a skewed or straggling chunk no
  /// longer serializes the scan the way static division did. 0 means the
  /// default.
  size_t morsel_rows = 64 * 1024;
  /// Radix partitions of the encoded-key hash space on the parallel path.
  /// Each worker keeps one CellStore per partition, making the combine
  /// phase `num_partitions` independent single-threaded merges (no locks,
  /// no serial combine). 0 = auto (4x the worker count).
  size_t num_partitions = 0;
  /// Sort the result on the grouping columns for deterministic output.
  bool sort_result = true;
  /// Safety cap for kArrayCube's dense allocation (cells = Π(C_i+1)).
  size_t array_max_cells = 1ULL << 26;
  /// Escape hatch: run on the legacy Value-vector CellMap core instead of
  /// the columnar (encoded-key / flat-hash / fixed-slot) core. Also
  /// switchable per-process with the DATACUBE_LEGACY_CELLS environment
  /// variable; used by the differential oracle to diff the two cores.
  bool use_legacy_cellmap = false;
  /// Batched aggregation on the columnar core: morsel-at-a-time group-id
  /// probing in CellStore plus per-aggregate IterBatch column sweeps, so
  /// one virtual call covers a whole morsel instead of one per row.
  /// Default on; aggregates without a batch kernel (holistic, DISTINCT,
  /// UDAs) fall back to scalar Iter per morsel. Escape hatch: set the
  /// DATACUBE_SCALAR_KERNELS environment variable to force the scalar
  /// per-row path process-wide; the differential oracle diffs both.
  bool use_batch_kernels = true;
  /// Byte budget for cost-based partial materialization (the HRU-style
  /// benefit-per-byte view selection over the grouping-set lattice).
  /// When > 0, ExecuteCube materializes only the selected grouping sets —
  /// always including the mandatory core — and answers every other
  /// requested set by super-aggregating its cheapest materialized ancestor
  /// (Section 3's Merge cascade used for serving). The rewrite never
  /// applies to holistic aggregates or to GROUPING SETS requests without
  /// the core: those fall back to direct computation, as does the legacy
  /// CellMap path. 0 = off. Also settable per-process with the
  /// DATACUBE_MATERIALIZE_BUDGET environment variable (bytes; the option
  /// wins when both are set).
  size_t materialize_budget_bytes = 0;
  /// Cooperative cancellation / deadline for this execution. Not owned; the
  /// caller keeps it alive for the duration of the call and may Cancel()
  /// from any thread. The engine polls it at work boundaries — each morsel
  /// on the parallel scan, each partition merge and cascade task, each
  /// grouping set / lattice node on the serial paths — and unwinds with
  /// kCancelled / kDeadlineExceeded. nullptr (the default) = uncontrolled.
  const ExecControl* control = nullptr;
  /// Slow-query threshold for this execution's profile, in milliseconds:
  /// >= 0 overrides the process-wide DATACUBE_SLOW_QUERY_MS; negative (the
  /// default) defers to it. An execution at or over the effective threshold
  /// is marked slow in its QueryProfile, counted in
  /// datacube_slow_queries_total, and appended to the JSONL file named by
  /// DATACUBE_SLOW_QUERY_LOG when that is set.
  double slow_query_ms = -1.0;
};

/// Per-grouping-set execution instrumentation (EXPLAIN ANALYZE's actual vs
/// estimated cell counts). `est_cells` stays negative unless estimates were
/// computed (they require a cardinality scan, paid only when a trace is
/// active or EXPLAIN asked for a plan).
struct GroupingSetExecStats {
  GroupingSet set = 0;
  uint64_t actual_cells = 0;
  double est_cells = -1.0;
  // Budgeted-materialization provenance (meaningful only when
  // CubeStats::lattice_budget_bytes > 0; EXPLAIN ANALYZE prints it).
  /// The materialized ancestor this set was folded from, or -1 when the
  /// set was materialized directly / computed from base data.
  int64_t answered_from = -1;
  /// True when the budget selection materialized this set itself.
  bool materialized = false;
};

/// Instrumentation reported with each execution; the units of the paper's
/// Section 5 cost claims (T×2^N Iter calls, scan counts, etc.).
///
/// This struct is the per-execution view of the observability substrate:
/// algorithms accumulate into it lock-free, and ExecuteCube flushes the
/// deltas into obs::MetricsRegistry::Global() (datacube_cube_* series), the
/// cumulative source of truth a monitoring scrape reads.
struct CubeStats {
  uint64_t iter_calls = 0;      // AggregateFunction::Iter invocations
  uint64_t merge_calls = 0;     // Merge (Iter_super) invocations
  uint64_t final_calls = 0;     // Final invocations
  uint64_t input_scans = 0;     // full passes over the input table
  uint64_t output_cells = 0;    // cube cells produced
  uint64_t hash_cells = 0;      // cells allocated by hash group-bys
  uint64_t hash_rehashes = 0;   // hash-table growth events while grouping
  // Columnar-core kernel counters (zero on the legacy CellMap path).
  uint64_t hash_probes = 0;     // flat-table probe steps across all lookups
  uint64_t hash_max_probe = 0;  // longest single probe chain observed
  uint64_t arena_bytes = 0;     // bytes reserved by cell-state arenas
  /// Per-cell heap state allocations (compatibility slots). Zero for
  /// queries whose aggregates are all distributive/algebraic built-ins —
  /// the inline fixed-slot guarantee the obs counters assert.
  uint64_t heap_state_allocs = 0;
  double wall_seconds = 0.0;    // end-to-end ExecuteCube wall time
  // Parallel-path counters (zero on serial executions). The three phase
  // walls are the EXPLAIN ANALYZE breakdown of a parallel run: morsel scan,
  // radix-partition merge, lattice cascade.
  uint64_t morsels_dispatched = 0;  // morsels pulled from the scan cursor
  uint64_t partitions = 0;          // radix partitions of the key space
  uint64_t merge_tasks = 0;         // partition-merge tasks executed
  uint64_t cascade_tasks = 0;       // grouping-set cascade tasks executed
  double scan_seconds = 0.0;        // parallel scan phase wall time
  double merge_seconds = 0.0;       // partition merge phase wall time
  double cascade_seconds = 0.0;     // lattice cascade phase wall time
  /// What the caller asked for (options.algorithm).
  CubeAlgorithm algorithm_requested = CubeAlgorithm::kAuto;
  /// What actually ran, after fallbacks (holistic aggregates, non-chain
  /// rollup shapes, array-size caps). Set by the algorithm that commits.
  CubeAlgorithm algorithm_used = CubeAlgorithm::kAuto;
  int threads_used = 1;
  // Budgeted-materialization counters (CubeOptions::materialize_budget_bytes
  // / DATACUBE_MATERIALIZE_BUDGET). All zero when no byte budget was in
  // effect — including holistic requests, which are never rewritten.
  uint64_t lattice_budget_bytes = 0;       // the budget that applied
  uint64_t lattice_views_materialized = 0; // grouping sets the budget kept
  uint64_t lattice_ancestor_folds = 0;     // sets answered by folding
  uint64_t lattice_fold_cells = 0;         // ancestor cells folded, total
  uint64_t lattice_base_fallbacks = 0;     // sets recomputed from base data
  uint64_t lattice_bytes_materialized = 0; // bytes resident in kept views
  /// One entry per grouping set, parallel to CubeSpec::GroupingSets().
  std::vector<GroupingSetExecStats> per_set;
  // Partition-pruning counters, set by the SQL engine when the scanned
  // source is a PartitionedCube (all zero otherwise). EXPLAIN renders
  // them as "partitions: scanned/pruned/total"; scanned + pruned == total.
  bool partition_source = false;
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_CUBE_SPEC_H_
