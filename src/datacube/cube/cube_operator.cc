#include "datacube/cube/cube_operator.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/lattice_rewrite.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/obs/trace.h"
#include "datacube/table/sort.h"

namespace datacube {

using cube_internal::BuildCubeContext;
using cube_internal::Cell;
using cube_internal::CellMap;
using cube_internal::CubeContext;
using cube_internal::SetMaps;
using cube_internal::SetStores;

const char* CubeAlgorithmName(CubeAlgorithm a) {
  switch (a) {
    case CubeAlgorithm::kAuto:
      return "auto";
    case CubeAlgorithm::kNaive2N:
      return "naive_2n";
    case CubeAlgorithm::kUnionGroupBy:
      return "union_groupby";
    case CubeAlgorithm::kFromCore:
      return "from_core";
    case CubeAlgorithm::kArrayCube:
      return "array_cube";
    case CubeAlgorithm::kSortRollup:
      return "sort_rollup";
    case CubeAlgorithm::kSortFromCore:
      return "sort_from_core";
  }
  return "?";
}

namespace {

// True if `sets` is a containment chain (rollup shape), which SortRollup
// handles in one sorted scan.
bool IsChainShape(const std::vector<GroupingSet>& sets) {
  for (size_t i = 1; i < sets.size(); ++i) {
    if ((sets[i - 1] & sets[i]) != sets[i]) return false;
  }
  return true;
}

CubeAlgorithm ChooseAlgorithm(const CubeContext& ctx) {
  if (IsChainShape(ctx.sets)) return CubeAlgorithm::kSortRollup;
  if (ctx.all_mergeable) return CubeAlgorithm::kFromCore;
  return CubeAlgorithm::kUnionGroupBy;
}

// True when ExecuteCube would take the partition-parallel path: the request
// is compatible (auto or from-core — a forced algorithm is honored serially
// rather than silently replaced), the aggregates can merge, the core is in
// the lattice, and the input is large enough to split.
bool WouldRunParallel(const CubeContext& ctx, const CubeOptions& options) {
  if (options.num_threads == 1) return false;  // the strictly-serial default
  if (options.algorithm != CubeAlgorithm::kAuto &&
      options.algorithm != CubeAlgorithm::kFromCore) {
    return false;
  }
  if (!ctx.all_mergeable || ctx.full_set_index < 0) return false;
  return cube_internal::ClampThreads(options.num_threads, ctx.num_rows()) > 1;
}

// Mirrors the fallback chains inside the Compute* implementations, so that
// EXPLAIN reports the algorithm an execution would actually commit to even
// when CubeOptions forces one (the implementations self-report at run time
// via CubeStats::algorithm_used).
CubeAlgorithm PredictAlgorithm(const CubeContext& ctx,
                               const CubeOptions& options,
                               const std::vector<size_t>& cardinalities) {
  CubeAlgorithm a = options.algorithm == CubeAlgorithm::kAuto
                        ? ChooseAlgorithm(ctx)
                        : options.algorithm;
  if (WouldRunParallel(ctx, options)) return CubeAlgorithm::kFromCore;
  switch (a) {
    case CubeAlgorithm::kAuto:
    case CubeAlgorithm::kNaive2N:
    case CubeAlgorithm::kUnionGroupBy:
      return a;
    case CubeAlgorithm::kFromCore:
      return ctx.all_mergeable ? CubeAlgorithm::kFromCore
                               : CubeAlgorithm::kUnionGroupBy;
    case CubeAlgorithm::kSortFromCore:
      if (!ctx.all_mergeable) return CubeAlgorithm::kUnionGroupBy;
      if (ctx.full_set_index < 0) return CubeAlgorithm::kFromCore;
      return CubeAlgorithm::kSortFromCore;
    case CubeAlgorithm::kSortRollup:
      if (IsChainShape(ctx.sets)) return CubeAlgorithm::kSortRollup;
      return ctx.all_mergeable ? CubeAlgorithm::kFromCore
                               : CubeAlgorithm::kUnionGroupBy;
    case CubeAlgorithm::kArrayCube: {
      bool is_full_cube =
          ctx.sets.size() == (1ULL << ctx.num_keys) && ctx.num_keys > 0;
      if (!ctx.all_mergeable) return CubeAlgorithm::kUnionGroupBy;
      if (!is_full_cube) return CubeAlgorithm::kFromCore;
      size_t total_cells = 1;
      for (size_t c : cardinalities) {
        size_t dim = c + 1;
        if (dim != 0 && total_cells > options.array_max_cells / dim) {
          return CubeAlgorithm::kFromCore;  // exceeds the dense budget
        }
        total_cells *= dim;
      }
      return CubeAlgorithm::kArrayCube;
    }
  }
  return a;
}

// Whether this execution runs on the legacy Value-vector CellMap core
// instead of the columnar default — per-call via CubeOptions, or
// per-process via DATACUBE_LEGACY_CELLS (any value but "" / "0").
bool UseLegacyCellMap(const CubeOptions& options) {
  if (options.use_legacy_cellmap) return true;
  const char* env = std::getenv("DATACUBE_LEGACY_CELLS");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

// Whether this execution runs the batched (morsel-at-a-time) aggregation
// kernels on the columnar core. Off per-call via CubeOptions, or
// per-process via DATACUBE_SCALAR_KERNELS (any value but "" / "0") — the
// scalar escape hatch the differential oracle cross-checks.
bool UseBatchKernels(const CubeOptions& options) {
  if (!options.use_batch_kernels) return false;
  const char* env = std::getenv("DATACUBE_SCALAR_KERNELS");
  return !(env != nullptr && env[0] != '\0' && std::string(env) != "0");
}

// Flushes one execution's deltas into the global registry — the cumulative
// datacube_cube_* series a monitoring scrape reads. One lookup per counter
// per execution; the hot loops never touch the registry.
void PublishCubeStats(const CubeStats& stats) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::Labels algo = {
      {"algorithm", CubeAlgorithmName(stats.algorithm_used)}};
  reg.GetCounter("datacube_cube_executions_total",
                 "Cube operator executions by committed algorithm", algo)
      .Inc();
  reg.GetHistogram("datacube_cube_execute_seconds",
                   "End-to-end cube execution wall time", algo)
      .Observe(stats.wall_seconds);
  reg.GetCounter("datacube_cube_iter_calls_total",
                 "AggregateFunction::Iter invocations")
      .Inc(stats.iter_calls);
  reg.GetCounter("datacube_cube_merge_calls_total",
                 "Scratchpad Merge (Iter_super) invocations")
      .Inc(stats.merge_calls);
  reg.GetCounter("datacube_cube_final_calls_total",
                 "AggregateFunction::Final invocations")
      .Inc(stats.final_calls);
  reg.GetCounter("datacube_cube_input_scans_total",
                 "Full passes over cube input tables")
      .Inc(stats.input_scans);
  reg.GetCounter("datacube_cube_output_cells_total", "Cube cells produced")
      .Inc(stats.output_cells);
  reg.GetCounter("datacube_cube_hash_cells_total",
                 "Cells allocated by hash group-bys")
      .Inc(stats.hash_cells);
  reg.GetCounter("datacube_cube_hash_rehashes_total",
                 "Hash-table growth events while grouping")
      .Inc(stats.hash_rehashes);
  // Columnar-core kernel counters; all zero on the legacy CellMap path.
  reg.GetCounter("datacube_cube_hash_probes_total",
                 "Flat-hash probe steps across all cell lookups")
      .Inc(stats.hash_probes);
  reg.GetCounter("datacube_cube_arena_bytes_total",
                 "Bytes reserved by cell-state arenas")
      .Inc(stats.arena_bytes);
  reg.GetCounter("datacube_cube_heap_state_allocs_total",
                 "Per-cell heap aggregate-state allocations (compat slots)")
      .Inc(stats.heap_state_allocs);
  // Parallel-path counters; all zero on serial executions.
  reg.GetCounter("datacube_cube_morsels_total",
                 "Morsels pulled from parallel scan cursors")
      .Inc(stats.morsels_dispatched);
  reg.GetCounter("datacube_cube_partitions_total",
                 "Radix key-space partitions across parallel executions")
      .Inc(stats.partitions);
  reg.GetCounter("datacube_cube_merge_tasks_total",
                 "Partition-merge tasks executed on the thread pool")
      .Inc(stats.merge_tasks);
  reg.GetCounter("datacube_cube_cascade_tasks_total",
                 "Grouping-set cascade tasks executed on the thread pool")
      .Inc(stats.cascade_tasks);
  // Budgeted-materialization counters — registered only when a byte budget
  // was in effect, so unbudgeted deployments never grow the series.
  if (stats.lattice_budget_bytes > 0) {
    reg.GetCounter("datacube_lattice_budget_runs_total",
                   "Cube executions under a materialization byte budget")
        .Inc();
    reg.GetCounter("datacube_lattice_views_materialized_total",
                   "Grouping-set views kept by budgeted selection")
        .Inc(stats.lattice_views_materialized);
    reg.GetCounter("datacube_lattice_ancestor_folds_total",
                   "Grouping sets answered by folding a materialized ancestor")
        .Inc(stats.lattice_ancestor_folds);
    reg.GetCounter("datacube_lattice_fold_cells_total",
                   "Ancestor cells folded while answering grouping sets")
        .Inc(stats.lattice_fold_cells);
    reg.GetCounter("datacube_lattice_base_fallbacks_total",
                   "Grouping sets recomputed from base data under a budget")
        .Inc(stats.lattice_base_fallbacks);
    reg.GetCounter("datacube_lattice_bytes_materialized_total",
                   "Bytes resident in budget-selected views")
        .Inc(stats.lattice_bytes_materialized);
  }
}

// Compact spec description for profiles of programmatic (non-SQL)
// executions, where there is no query text to record.
std::string SpecDigest(const CubeContext& ctx, const CubeSpec& spec) {
  std::string out = "cube(";
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    if (k > 0) out += ",";
    out += ctx.key_names[k];
  }
  out += ") aggs[";
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    if (a > 0) out += ",";
    out += spec.aggregates[a].function;
  }
  out += "] sets=" + std::to_string(ctx.sets.size());
  return out;
}

// Emits this execution's QueryProfile into the global ring (and, when it
// crossed the slow threshold, the slow-query JSONL log). Runs once per
// ExecuteCube — strings and a lock, nowhere near the hot path.
void EmitQueryProfile(const CubeContext& ctx, const CubeSpec& spec,
                      const CubeOptions& options, const CubeStats& stats) {
  obs::QueryProfileLog& log = obs::QueryProfileLog::Global();
  obs::QueryProfile p;
  if (const std::string* text = obs::CurrentQueryText()) {
    p.query = *text;
  } else {
    p.query = SpecDigest(ctx, spec);
  }
  p.wall_ms = stats.wall_seconds * 1e3;
  p.scan_ms = stats.scan_seconds * 1e3;
  p.merge_ms = stats.merge_seconds * 1e3;
  p.cascade_ms = stats.cascade_seconds * 1e3;
  p.algorithm = CubeAlgorithmName(stats.algorithm_used);
  p.threads = stats.threads_used;
  p.input_rows = ctx.num_rows();
  p.output_cells = stats.output_cells;
  p.arena_peak_bytes = stats.arena_bytes;
  auto add = [&p](const char* name, uint64_t v) {
    if (v != 0) p.counters.emplace_back(name, v);
  };
  add("iter_calls", stats.iter_calls);
  add("merge_calls", stats.merge_calls);
  add("final_calls", stats.final_calls);
  add("input_scans", stats.input_scans);
  add("hash_cells", stats.hash_cells);
  add("hash_probes", stats.hash_probes);
  add("hash_rehashes", stats.hash_rehashes);
  add("heap_state_allocs", stats.heap_state_allocs);
  add("morsels_dispatched", stats.morsels_dispatched);
  add("partitions", stats.partitions);
  add("merge_tasks", stats.merge_tasks);
  add("cascade_tasks", stats.cascade_tasks);
  if (stats.lattice_budget_bytes > 0) {
    p.lattice =
        "budget=" + std::to_string(stats.lattice_budget_bytes) +
        " views=" + std::to_string(stats.lattice_views_materialized) +
        " folds=" + std::to_string(stats.lattice_ancestor_folds) +
        " fold_cells=" + std::to_string(stats.lattice_fold_cells) +
        " base_fallbacks=" + std::to_string(stats.lattice_base_fallbacks) +
        " bytes=" + std::to_string(stats.lattice_bytes_materialized);
  }
  double threshold = log.EffectiveSlowThresholdMs(options.slow_query_ms);
  p.slow = threshold >= 0 && p.wall_ms >= threshold;
  if (p.slow) {
    obs::MetricsRegistry::Global()
        .GetCounter("datacube_slow_queries_total",
                    "Queries at or over the slow-query threshold")
        .Inc();
  }
  log.Record(std::move(p));
}

}  // namespace

namespace cube_internal {

// Assembles the result relation from per-set cell maps (Section 3's
// relational representation: one row per cube cell, ALL marking
// super-aggregates).
Result<Table> AssembleResult(const CubeContext& ctx, SetMaps& maps,
                             CubeStats* stats) {
  const CubeSpec& spec = *ctx.spec;

  // SQL semantics: the empty grouping set produces exactly one row even for
  // empty input (the aggregate over the empty set).
  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    if (ctx.sets[s] == 0 && maps[s].empty()) {
      maps[s].emplace(std::vector<Value>(ctx.num_keys, Value::All()),
                      ctx.NewCell());
    }
  }

  // Result schema.
  std::vector<Field> fields;
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    fields.push_back(Field{ctx.key_names[k], ctx.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (const Decoration& d : spec.decorations) {
    fields.push_back(Field{d.name, d.expr->output_type(), /*nullable=*/true,
                           /*allow_all=*/false});
  }
  for (size_t a = 0; a < ctx.aggs.size(); ++a) {
    std::string name = spec.aggregates[a].output_name.empty()
                           ? spec.aggregates[a].function
                           : spec.aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  if (spec.add_grouping_columns) {
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      fields.push_back(Field{"grouping_" + ctx.key_names[k], DataType::kBool,
                             /*nullable=*/false, /*allow_all=*/false});
    }
  }
  if (spec.add_grouping_id) {
    fields.push_back(Field{"grouping_id", DataType::kInt64,
                           /*nullable=*/false, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};

  size_t total_cells = 0;
  for (const CellMap& m : maps) total_cells += m.size();
  out.Reserve(total_cells);
  if (stats != nullptr) stats->output_cells = total_cells;

  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    GroupingSet set = ctx.sets[s];
    for (auto& [key, cell] : maps[s]) {
      std::vector<Value> row;
      row.reserve(out.num_columns());
      // Grouping columns: ALL (or NULL under the minimalist Section 3.4
      // design) in aggregated-away positions.
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        if (IsGrouped(set, k)) {
          row.push_back(key[k]);
        } else {
          row.push_back(spec.all_mode == AllMode::kAllToken ? Value::All()
                                                            : Value::Null());
        }
      }
      // Decorations: value when the grouping set functionally determines it
      // (covers the determinant), else NULL — Table 7's continent rule.
      for (const Decoration& d : spec.decorations) {
        bool determined = (set & d.determinant) == d.determinant;
        if (determined && cell.has_repr) {
          DATACUBE_ASSIGN_OR_RETURN(
              Value v, d.expr->Evaluate(*ctx.input, cell.repr_row));
          row.push_back(std::move(v));
        } else {
          row.push_back(Value::Null());
        }
      }
      // Aggregates.
      for (size_t a = 0; a < ctx.aggs.size(); ++a) {
        DATACUBE_ASSIGN_OR_RETURN(
            Value v, ctx.aggs[a]->FinalChecked(cell.states[a].get()));
        row.push_back(std::move(v));
        if (stats != nullptr) ++stats->final_calls;
      }
      // GROUPING() discriminators (Section 3.3/3.4): TRUE where the column
      // is an ALL value.
      if (spec.add_grouping_columns) {
        for (size_t k = 0; k < ctx.num_keys; ++k) {
          row.push_back(Value::Bool(!IsGrouped(set, k)));
        }
      }
      if (spec.add_grouping_id) {
        int64_t id = 0;
        for (size_t k = 0; k < ctx.num_keys; ++k) {
          if (!IsGrouped(set, k)) id |= (1LL << k);
        }
        row.push_back(Value::Int64(id));
      }
      DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

}  // namespace cube_internal

Result<CubeResult> ExecuteCube(const Table& input, const CubeSpec& spec,
                               const CubeOptions& options) {
  auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("execute_cube");

  // The columnar one-shot path encodes plain column-reference keys straight
  // from the table, so it skips materializing them as Value vectors.
  DATACUBE_RETURN_IF_ERROR(CheckControl(options.control));
  bool legacy_core = UseLegacyCellMap(options);
  DATACUBE_ASSIGN_OR_RETURN(
      CubeContext ctx,
      BuildCubeContext(input, spec, /*materialize_ref_keys=*/legacy_core));
  ctx.control = options.control;

  CubeStats stats;
  stats.algorithm_requested = options.algorithm;
  CubeAlgorithm algorithm = options.algorithm == CubeAlgorithm::kAuto
                                ? ChooseAlgorithm(ctx)
                                : options.algorithm;
  // Refined below: each Compute* implementation self-reports the algorithm
  // it commits to after its fallback checks.
  stats.algorithm_used = algorithm;
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    span.Attr("grouping_columns", static_cast<uint64_t>(ctx.num_keys));
    span.Attr("grouping_sets", static_cast<uint64_t>(ctx.sets.size()));
    span.Attr("requested", CubeAlgorithmName(options.algorithm));
  }

  // Per-grouping-set actuals are one size read each; estimates cost a
  // cardinality scan, so they are computed only for a traced execution
  // (EXPLAIN ANALYZE) where the comparison is the point.
  auto fill_estimates = [&]() {
    if (!obs::TracingActive()) return;
    std::vector<size_t> cards = cube_internal::KeyCardinalities(ctx);
    for (size_t s = 0; s < ctx.sets.size(); ++s) {
      double est = 1.0;
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        if (IsGrouped(ctx.sets[s], k)) est *= static_cast<double>(cards[k]);
      }
      stats.per_set[s].est_cells = est;
    }
  };
  if (span.active()) {
    span.Attr("core", legacy_core ? "legacy_cellmap" : "columnar");
  }

  Result<Table> table = [&]() -> Result<Table> {
    if (!legacy_core) {
      DATACUBE_ASSIGN_OR_RETURN(cube_internal::ColumnarContext cc,
                                cube_internal::BuildColumnarContext(ctx));
      cc.use_batch = UseBatchKernels(options);
      auto dispatch = [&]() -> Result<SetStores> {
        if (WouldRunParallel(ctx, options)) {
          return cube_internal::ColumnarParallel(cc, options, &stats);
        }
        switch (algorithm) {
          case CubeAlgorithm::kNaive2N:
            return cube_internal::ColumnarNaive2N(cc, &stats);
          case CubeAlgorithm::kUnionGroupBy:
            return cube_internal::ColumnarUnionGroupBy(cc, &stats);
          case CubeAlgorithm::kFromCore:
            return cube_internal::ColumnarFromCore(cc, &stats);
          case CubeAlgorithm::kArrayCube:
            return cube_internal::ColumnarArrayCube(cc, options, &stats);
          case CubeAlgorithm::kSortRollup:
            return cube_internal::ColumnarSortRollup(cc, &stats);
          case CubeAlgorithm::kSortFromCore:
            return cube_internal::ColumnarSortFromCore(cc, &stats);
          case CubeAlgorithm::kAuto:
            break;
        }
        return Status::Internal("unresolved cube algorithm");
      };
      size_t budget = cube_internal::ResolveMaterializeBudget(options);
      Result<SetStores> stores = [&]() -> Result<SetStores> {
        if (budget == 0 || !cube_internal::LatticeRewriteEligible(ctx)) {
          return dispatch();
        }
        // Budgeted partial materialization: run the normal algorithm over
        // only the benefit-per-byte selection of the requested sets — the
        // codec, state layout, and packed row keys are set-independent, so
        // ctx.sets can be swapped around the dispatch — then answer every
        // remaining set from its cheapest materialized ancestor.
        DATACUBE_ASSIGN_OR_RETURN(
            cube_internal::LatticeRewritePlan plan,
            cube_internal::PlanLatticeRewrite(ctx, cc, budget));
        std::vector<GroupingSet> requested = std::move(ctx.sets);
        int requested_full = ctx.full_set_index;
        ctx.sets = plan.selection.views;
        ctx.full_set_index = 0;  // the selection always leads with the core
        Result<SetStores> selected = dispatch();
        ctx.sets = std::move(requested);
        ctx.full_set_index = requested_full;
        if (!selected.ok()) return selected.status();
        if (span.active()) {
          span.Attr("materialize_budget_bytes",
                    static_cast<uint64_t>(budget));
          span.Attr("views_materialized",
                    static_cast<uint64_t>(plan.selection.views.size()));
        }
        return cube_internal::FoldSelectedToRequested(
            cc, plan, ctx.sets, std::move(selected).value(), &stats);
      }();
      if (!stores.ok()) return stores.status();
      stats.per_set.resize(ctx.sets.size());
      for (size_t s = 0; s < ctx.sets.size(); ++s) {
        stats.per_set[s].set = ctx.sets[s];
        stats.per_set[s].actual_cells = stores.value()[s].size();
      }
      fill_estimates();
      cube_internal::FlushStoreStats(stores.value(), &stats);
      obs::ScopedSpan assemble_span("assemble_result");
      return cube_internal::AssembleColumnarResult(cc, stores.value(),
                                                   &stats);
    }

    Result<SetMaps> maps = [&]() -> Result<SetMaps> {
      if (WouldRunParallel(ctx, options)) {
        return cube_internal::ComputeParallel(ctx, options, &stats);
      }
      switch (algorithm) {
        case CubeAlgorithm::kNaive2N:
          return cube_internal::ComputeNaive2N(ctx, &stats);
        case CubeAlgorithm::kUnionGroupBy:
          return cube_internal::ComputeUnionGroupBy(ctx, &stats);
        case CubeAlgorithm::kFromCore:
          return cube_internal::ComputeFromCore(ctx, &stats);
        case CubeAlgorithm::kArrayCube:
          return cube_internal::ComputeArrayCube(ctx, options, &stats);
        case CubeAlgorithm::kSortRollup:
          return cube_internal::ComputeSortRollup(ctx, &stats);
        case CubeAlgorithm::kSortFromCore:
          return cube_internal::ComputeSortFromCore(ctx, &stats);
        case CubeAlgorithm::kAuto:
          break;
      }
      return Status::Internal("unresolved cube algorithm");
    }();
    if (!maps.ok()) return maps.status();
    stats.per_set.resize(ctx.sets.size());
    for (size_t s = 0; s < ctx.sets.size(); ++s) {
      stats.per_set[s].set = ctx.sets[s];
      stats.per_set[s].actual_cells = maps.value()[s].size();
    }
    fill_estimates();
    obs::ScopedSpan assemble_span("assemble_result");
    return cube_internal::AssembleResult(ctx, maps.value(), &stats);
  }();
  if (!table.ok()) return table.status();
  if (options.sort_result) {
    obs::ScopedSpan sort_span("sort_result");
    std::vector<SortKey> keys;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      keys.push_back(SortKey{k, /*ascending=*/true});
    }
    DATACUBE_ASSIGN_OR_RETURN(table, SortTable(table.value(), keys));
  }

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (span.active()) {
    span.Attr("algorithm", CubeAlgorithmName(stats.algorithm_used));
    span.Attr("threads", stats.threads_used);
    span.Attr("output_cells", stats.output_cells);
    span.Attr("iter_calls", stats.iter_calls);
    span.Attr("merge_calls", stats.merge_calls);
    if (stats.threads_used > 1) {
      span.Attr("morsels", stats.morsels_dispatched);
      span.Attr("partitions", stats.partitions);
      span.Attr("merge_tasks", stats.merge_tasks);
      span.Attr("cascade_tasks", stats.cascade_tasks);
    }
  }
  PublishCubeStats(stats);
  EmitQueryProfile(ctx, spec, options, stats);
  return CubeResult{std::move(table).value(), stats};
}

Result<std::string> ExplainCube(const Table& input, const CubeSpec& spec,
                                const CubeOptions& options) {
  DATACUBE_ASSIGN_OR_RETURN(CubeContext ctx,
                            BuildCubeContext(input, spec));
  std::vector<size_t> cards = cube_internal::KeyCardinalities(ctx);
  cube_internal::LatticePlan plan = cube_internal::PlanLattice(ctx.sets, cards);
  // The algorithm the execution would actually commit to, including fallback
  // from a forced choice the input cannot support (e.g. kFromCore with a
  // holistic aggregate runs as union_groupby).
  CubeAlgorithm algorithm = PredictAlgorithm(ctx, options, cards);

  std::string out;
  out += "cube plan over " + std::to_string(input.num_rows()) + " rows, " +
         std::to_string(ctx.num_keys) + " grouping columns, " +
         std::to_string(ctx.sets.size()) + " grouping sets\n";
  out += "algorithm: " + std::string(CubeAlgorithmName(algorithm));
  if (options.algorithm != CubeAlgorithm::kAuto &&
      options.algorithm != algorithm) {
    out += " (requested " + std::string(CubeAlgorithmName(options.algorithm)) +
           ", fell back)";
  }
  if (WouldRunParallel(ctx, options)) {
    out += " (partition-parallel x" +
           std::to_string(cube_internal::ClampThreads(options.num_threads,
                                                      ctx.num_rows())) +
           ")";
  }
  out += "\ncolumn cardinalities:";
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    out += " " + ctx.key_names[k] + "=" + std::to_string(cards[k]);
  }
  out += "\n";
  // Budgeted-materialization provenance: which views the byte budget keeps
  // and where every other requested set folds from.
  size_t budget = cube_internal::ResolveMaterializeBudget(options);
  std::optional<cube_internal::LatticeRewritePlan> rewrite;
  if (budget > 0 && !UseLegacyCellMap(options) &&
      cube_internal::LatticeRewriteEligible(ctx)) {
    DATACUBE_ASSIGN_OR_RETURN(cube_internal::ColumnarContext cc,
                              cube_internal::BuildColumnarContext(ctx));
    DATACUBE_ASSIGN_OR_RETURN(
        cube_internal::LatticeRewritePlan rw,
        cube_internal::PlanLatticeRewrite(ctx, cc, budget));
    rewrite = std::move(rw);
  }
  if (budget > 0) {
    out += "materialization budget: " + std::to_string(budget) + " bytes";
    if (rewrite.has_value()) {
      out += " (" + std::to_string(rewrite->selection.views.size()) + "/" +
             std::to_string(ctx.sets.size()) + " views kept, est resident " +
             std::to_string(
                 static_cast<uint64_t>(rewrite->selection.selected_bytes)) +
             " bytes, est cell = " +
             std::to_string(
                 static_cast<uint64_t>(rewrite->model.bytes_per_cell)) +
             " bytes)";
    } else {
      out += " (ignored: holistic aggregate, missing core, or legacy core "
             "requires direct computation)";
    }
    out += "\n";
  }
  bool cascades = algorithm == CubeAlgorithm::kFromCore ||
                  algorithm == CubeAlgorithm::kSortFromCore ||
                  algorithm == CubeAlgorithm::kArrayCube;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const cube_internal::LatticePlan::Node& node = plan.nodes[i];
    out += "  " + GroupingSetToString(node.set, ctx.key_names);
    out +=
        "  est_cells=" + std::to_string(static_cast<uint64_t>(node.est_cells));
    if (rewrite.has_value()) {
      // Under a budget, provenance is the rewrite's: a kept view is
      // materialized by the algorithm run; everything else folds from its
      // planned cheapest ancestor.
      GroupingSet source = node.set;
      for (size_t s = 0; s < ctx.sets.size(); ++s) {
        if (ctx.sets[s] == node.set) {
          source = rewrite->planned_source[s];
          break;
        }
      }
      if (source == node.set) {
        out += "  materialized";
      } else {
        out += "  <- fold from " + GroupingSetToString(source, ctx.key_names);
      }
    } else if (cascades && ctx.all_mergeable) {
      if (node.parent < 0) {
        out += "  <- base scan";
      } else {
        out += "  <- merge from " +
               GroupingSetToString(
                   plan.nodes[static_cast<size_t>(node.parent)].set,
                   ctx.key_names);
      }
    } else {
      out += "  <- base scan";
    }
    out += "\n";
  }
  return out;
}

Result<CubeResult> GroupBy(const Table& input, std::vector<GroupExpr> group_by,
                           std::vector<AggregateSpec> aggregates,
                           const CubeOptions& options) {
  CubeSpec spec;
  spec.group_by = std::move(group_by);
  spec.aggregates = std::move(aggregates);
  return ExecuteCube(input, spec, options);
}

Result<CubeResult> Cube(const Table& input, std::vector<GroupExpr> cube,
                        std::vector<AggregateSpec> aggregates,
                        const CubeOptions& options) {
  CubeSpec spec;
  spec.cube = std::move(cube);
  spec.aggregates = std::move(aggregates);
  return ExecuteCube(input, spec, options);
}

Result<CubeResult> Rollup(const Table& input, std::vector<GroupExpr> rollup,
                          std::vector<AggregateSpec> aggregates,
                          const CubeOptions& options) {
  CubeSpec spec;
  spec.rollup = std::move(rollup);
  spec.aggregates = std::move(aggregates);
  return ExecuteCube(input, spec, options);
}

GroupExpr GroupCol(const std::string& column) {
  return GroupExpr{Expr::Column(column), column};
}

AggregateSpec Agg(const std::string& function, const std::string& column,
                  const std::string& output_name) {
  AggregateSpec spec;
  spec.function = function;
  spec.args = {Expr::Column(column)};
  spec.output_name =
      output_name.empty() ? function + "_" + column : output_name;
  return spec;
}

AggregateSpec CountStar(const std::string& output_name) {
  AggregateSpec spec;
  spec.function = "count_star";
  spec.output_name = output_name;
  return spec;
}

}  // namespace datacube
