#ifndef DATACUBE_CUBE_PARTIAL_CUBE_H_
#define DATACUBE_CUBE_PARTIAL_CUBE_H_

#include <memory>
#include <string>
#include <vector>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/cube_store.h"
#include "datacube/cube/view_selection.h"

namespace datacube {

/// A partially materialized cube: only a selected subset of the lattice's
/// grouping sets is stored (chosen explicitly, by SelectViewsGreedy, or by
/// the benefit-per-byte greedy under BuildWithBudget), and any other
/// grouping-set query is answered by aggregating the cheapest materialized
/// ancestor view — the Harinarayan-Rajaraman-Ullman scheme the paper points
/// to in Section 6 for cubes too large to store whole.
///
/// Views live as columnar CellStore shards (encoded keys, fixed-slot
/// aggregate states), maintainable under inserts and checkpointable with
/// exact scratchpads (SaveToFile / LoadFromFile).
///
/// Requires every aggregate to support Merge and to be non-holistic
/// (distributive or algebraic): holistic super-aggregates need base data,
/// so a holistic cube must not be served by ancestor folding.
class PartialCube : public CubeStoreInterface {
 public:
  /// Materializes `views` (each a bitmask over spec's grouping columns; the
  /// core is added if missing) for spec's aggregates over `input`.
  static Result<std::unique_ptr<PartialCube>> Build(
      const Table& input, const CubeSpec& spec,
      const std::vector<GroupingSet>& views);

  /// Runs the HRU benefit-per-byte greedy over the full 2^N lattice under
  /// `budget_bytes` (cells estimated from column cardinalities, bytes from
  /// the columnar cell layout) and materializes the selected views. The
  /// mandatory core is always kept, even when it alone exceeds the budget.
  /// Per-set observed cell counts — the feedback a re-materialization can
  /// hand back to the cost model in place of cardinality estimates.
  using ObservedCellCounts = std::vector<std::pair<GroupingSet, double>>;

  /// As BuildWithBudget below, with `observed` (when non-null) overriding
  /// the cardinality-product cell estimates per grouping set — the
  /// CubeStats-observed-cardinality feedback loop: a prior build's actual
  /// view sizes (ObservedCells()) replace guesses on re-materialization.
  static Result<std::unique_ptr<PartialCube>> BuildWithBudget(
      const Table& input, const CubeSpec& spec, size_t budget_bytes,
      const ObservedCellCounts* observed);

  static Result<std::unique_ptr<PartialCube>> BuildWithBudget(
      const Table& input, const CubeSpec& spec, size_t budget_bytes);

  PartialCube(const PartialCube&) = delete;
  PartialCube& operator=(const PartialCube&) = delete;

  /// Per-query instrumentation: a snapshot of the last Query() call. Each
  /// query also bumps the process-wide datacube_partial_* counters in
  /// obs::MetricsRegistry::Global() (queries by hit/miss, cells scanned).
  struct QueryStats {
    GroupingSet answered_from = 0;
    bool was_materialized = false;
    /// Ancestor cells folded to produce the answer (0 when materialized).
    size_t cells_scanned = 0;
  };

  /// Answers GROUP BY over `target` (any subset of the grouping columns),
  /// returning the grouping columns + aggregate values relation.
  Result<Table> Query(GroupingSet target);

  // CubeStoreInterface. QuerySet answers any set (materialized or folded
  // from an ancestor); ToTable concatenates the materialized views.
  Result<Table> QuerySet(GroupingSet target) override { return Query(target); }
  Result<Table> ToTable() override;
  const CubeSpec& spec() const override { return *spec_; }
  const char* kind() const override { return "partial"; }
  size_t num_base_rows() const override { return base_->num_rows(); }

  /// Incremental insert maintenance: folds one new base row into every
  /// materialized view (|views| scratchpad visits instead of a rebuild) —
  /// the Section 6 trigger scenario applied to the partial cube.
  Status ApplyInsert(const std::vector<Value>& row) override;

  /// Checkpoints the partial cube — base data, the view selection, and
  /// every cell's exact scratchpad — to `path` (format DATACUBE_PCUBE_V1).
  Status SaveToFile(const std::string& path) const override;

  /// Restores a partial cube checkpointed by SaveToFile. The caller
  /// supplies the same CubeSpec the cube was built with (expressions are
  /// not serialized). The STORED view selection is authoritative: the
  /// loaded cube serves exactly the views it saved, even when the current
  /// data statistics would select differently today.
  static Result<std::unique_ptr<PartialCube>> LoadFromFile(
      const CubeSpec& spec, const std::string& path);

  const QueryStats& last_query_stats() const { return last_stats_; }
  const std::vector<GroupingSet>& views() const { return views_; }

  /// Total materialized cells across all stored views.
  size_t materialized_cells() const;

  /// Exact observed cell count per materialized view (the stores' sizes),
  /// in views() order — feed this to BuildWithBudget's `observed` on the
  /// next materialization of the same spec.
  ObservedCellCounts ObservedCells() const;

  /// Bytes resident across all stored views (cells × the columnar cell
  /// footprint: packed key words + aggregate state block).
  size_t materialized_bytes() const;

  /// The byte budget this cube was built under (0 for explicit views).
  size_t budget_bytes() const { return budget_bytes_; }

  /// The greedy selection BuildWithBudget ran (empty for explicit views
  /// and for loaded checkpoints, whose stored views are authoritative).
  const ViewSelection& selection() const { return selection_; }

 private:
  PartialCube() = default;

  Result<Table> AssembleSet(const cube_internal::CellStore& cells) const;

  // Maintenance-insert key path, mirroring MaterializedCube: grow the
  // dictionaries with the new row's key values, re-laying-out the codec
  // (and re-keying every store) when a new code outgrows its bit field.
  Status AppendRowKey(size_t row_id);
  void RelayoutAndRekey();

  std::unique_ptr<Table> base_;
  std::unique_ptr<CubeSpec> spec_;
  cube_internal::CubeContext ctx_;
  // The columnar view (key codec + state layout + packed row keys) and the
  // per-view flat stores. cc_ must outlive stores_ — stores destroy their
  // cells through it — so declaration order matters here.
  cube_internal::ColumnarContext cc_;
  cube_internal::SetStores stores_;
  std::vector<GroupingSet> views_;  // == ctx_.sets
  size_t budget_bytes_ = 0;
  ViewSelection selection_;
  QueryStats last_stats_;
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_PARTIAL_CUBE_H_
