#ifndef DATACUBE_CUBE_PARTIAL_CUBE_H_
#define DATACUBE_CUBE_PARTIAL_CUBE_H_

#include <memory>
#include <vector>

#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/view_selection.h"

namespace datacube {

/// A partially materialized cube: only a selected subset of the lattice's
/// grouping sets is stored (typically chosen by SelectViewsGreedy), and any
/// other grouping-set query is answered by aggregating the cheapest
/// materialized ancestor view — the Harinarayan-Rajaraman-Ullman scheme the
/// paper points to in Section 6 for cubes too large to store whole.
///
/// Requires every aggregate to support Merge (distributive or algebraic;
/// the scratchpads of the ancestor view are folded into the query's cells).
class PartialCube {
 public:
  /// Materializes `views` (each a bitmask over spec's grouping columns; the
  /// core is added if missing) for spec's aggregates over `input`.
  static Result<std::unique_ptr<PartialCube>> Build(
      const Table& input, const CubeSpec& spec,
      const std::vector<GroupingSet>& views);

  PartialCube(const PartialCube&) = delete;
  PartialCube& operator=(const PartialCube&) = delete;

  /// Per-query instrumentation: a snapshot of the last Query() call. Each
  /// query also bumps the process-wide datacube_partial_* counters in
  /// obs::MetricsRegistry::Global() (queries by hit/miss, cells scanned).
  struct QueryStats {
    GroupingSet answered_from = 0;
    bool was_materialized = false;
    /// Ancestor cells folded to produce the answer (0 when materialized).
    size_t cells_scanned = 0;
  };

  /// Answers GROUP BY over `target` (any subset of the grouping columns),
  /// returning the grouping columns + aggregate values relation.
  Result<Table> Query(GroupingSet target);

  /// Incremental insert maintenance: folds one new base row into every
  /// materialized view (|views| scratchpad visits instead of a rebuild) —
  /// the Section 6 trigger scenario applied to the partial cube.
  Status ApplyInsert(const std::vector<Value>& row);

  const QueryStats& last_query_stats() const { return last_stats_; }
  const std::vector<GroupingSet>& views() const { return views_; }

  /// Total materialized cells across all stored views.
  size_t materialized_cells() const;

 private:
  PartialCube() = default;

  Result<Table> AssembleSet(const cube_internal::CellMap& cells) const;

  std::unique_ptr<Table> base_;
  std::unique_ptr<CubeSpec> spec_;
  cube_internal::CubeContext ctx_;
  std::vector<GroupingSet> views_;        // == ctx_.sets
  cube_internal::SetMaps maps_;
  QueryStats last_stats_;
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_PARTIAL_CUBE_H_
