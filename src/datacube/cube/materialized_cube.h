#ifndef DATACUBE_CUBE_MATERIALIZED_CUBE_H_
#define DATACUBE_CUBE_MATERIALIZED_CUBE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/cube_store.h"

namespace datacube {

/// Counters for the Section 6 maintenance claims. Per-cube view; every
/// maintenance operation also mirrors its delta into the process-wide
/// obs::MetricsRegistry::Global() datacube_maintenance_* counters.
struct MaintenanceStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Cells whose scratchpad was updated in place.
  uint64_t cells_updated = 0;
  /// Cells skipped by the insert short-circuit ("if the new value loses one
  /// competition, it will lose in all lower dimensions").
  uint64_t cells_skipped = 0;
  /// Cells recomputed from base data because a delete-holistic aggregate
  /// (MIN/MAX) lost a contributing value.
  uint64_t cells_recomputed = 0;
  /// Base rows re-scanned during recomputes — the paper's "expensive to
  /// maintain" cost.
  uint64_t recompute_rows_scanned = 0;
};

/// One coordinate of a cube slice request: a fixed concrete value, the ALL
/// super-aggregate plane, or a wildcard ranging over the dimension's
/// concrete values.
struct SliceCoord {
  enum class Kind { kFixed, kAllPlane, kWildcard };

  static SliceCoord Fixed(Value v) {
    SliceCoord c;
    c.kind = Kind::kFixed;
    c.value = std::move(v);
    return c;
  }
  static SliceCoord AllPlane() {
    SliceCoord c;
    c.kind = Kind::kAllPlane;
    return c;
  }
  static SliceCoord Wildcard() {
    SliceCoord c;
    c.kind = Kind::kWildcard;
    return c;
  }

  Kind kind = Kind::kWildcard;
  Value value;
};

/// A cube computed once and maintained under base-table INSERT/DELETE — the
/// Section 6 scenario ("customers use these operators to compute and store
/// the cube [and] define triggers ... so that when the tables change, the
/// cube is dynamically updated").
///
/// Maintenance strategy per aggregate, following the paper's orthogonal
/// hierarchy:
///  * INSERT: visit the row's cell in every grouping set and fold the row in
///    (2^N scratchpad visits), short-circuiting cells that provably cannot
///    change (MAX losing a competition).
///  * DELETE: aggregates that are algebraic/distributive *for delete*
///    (COUNT, SUM, AVG, VAR — DeleteClass::kDeletable) update scratchpads in
///    place via Remove(). Delete-holistic aggregates (MIN/MAX) recompute the
///    affected cell from the base data — unless the deleted value provably
///    did not matter (it was not the incumbent extreme).
///
/// The cube also answers the Section 4 addressing forms: cube.v(i, j, ...)
/// point lookups with ALL coordinates, and percent-of-total.
class MaterializedCube : public CubeStoreInterface {
 public:
  /// Computes the cube over `input` and retains a copy of the base data for
  /// maintenance.
  static Result<std::unique_ptr<MaterializedCube>> Build(
      const Table& input, const CubeSpec& spec,
      const CubeOptions& options = {});

  MaterializedCube(const MaterializedCube&) = delete;
  MaterializedCube& operator=(const MaterializedCube&) = delete;

  /// Applies one inserted base row (full base-table width).
  Status ApplyInsert(const std::vector<Value>& row) override;

  /// Applies one deleted base row. The row must currently exist in the base
  /// data (value-equal match).
  Status ApplyDelete(const std::vector<Value>& row);

  /// Applies an update — per Section 6, "update is just delete plus
  /// insert". Fails (leaving the cube unchanged) if `old_row` is absent.
  Status ApplyUpdate(const std::vector<Value>& old_row,
                     const std::vector<Value>& new_row);

  /// One maintained-cell change, reported to the change listener — the
  /// downstream half of the paper's trigger scenario (a report or a
  /// visualization refreshing the cells an insert/delete touched).
  struct CellChange {
    enum class Op { kUpdated, kCreated, kErased };
    GroupingSet set = 0;
    std::vector<Value> key;  // full-width, ALL in aggregated-away positions
    Op op = Op::kUpdated;
  };
  using ChangeListener = std::function<void(const CellChange&)>;

  /// Installs (or clears, with nullptr) a callback invoked for every cube
  /// cell a maintenance operation touches.
  void SetChangeListener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

  /// Point addressing (Section 4's cube.v(:i, :j)): `coords` has one Value
  /// per grouping column, with Value::All() selecting the super-aggregate
  /// plane. Returns the aggregate value of that cell, or NotFound for an
  /// empty cell.
  Result<Value> ValueAt(const std::string& aggregate_output_name,
                        const std::vector<Value>& coords) const;

  /// Drill-down navigation (Section 2: "going down the levels is called
  /// drilling-down into the data"): given a cell address, expands dimension
  /// `dimension` from its ALL plane into its concrete values, keeping the
  /// other coordinates fixed. Returns the finer cells as a relation.
  Result<Table> DrillDown(const std::vector<Value>& coords,
                          size_t dimension) const;

  /// Roll-up navigation ("going up the levels is called rolling-up the
  /// data"): collapses dimension `dimension` of the cell address to its ALL
  /// super-aggregate, returning that single coarser cell as a relation.
  Result<Table> RollUp(const std::vector<Value>& coords,
                       size_t dimension) const;

  /// Extracts a sub-slab of the cube (the paper's Section 1 observation
  /// that "visualization tools render two and three-dimensional sub-slabs"):
  /// one SliceCoord per grouping column — fixed values filter, wildcards
  /// enumerate concrete values, AllPlane selects the super-aggregate plane.
  /// Returns the matching cells as a relation (grouping columns +
  /// aggregates).
  Result<Table> Slice(const std::vector<SliceCoord>& coords) const;

  /// ValueAt(coords) / ValueAt(ALL...ALL) — the Section 4 percent-of-total
  /// shorthand `SUM(x) / total(ALL, ALL, ALL)`. Both values must be numeric.
  Result<double> PercentOfTotal(const std::string& aggregate_output_name,
                                const std::vector<Value>& coords) const;

  /// Section 4's "index of a value — an indication of how far the value is
  /// from the expected value": for a cell fixed on exactly two dimensions
  /// i and j (ALL elsewhere), the independence index
  ///   v(i,j) × v(ALL,ALL) / (v(i,ALL) × v(ALL,j)).
  /// 1.0 means the two dimensions are independent at this cell; > 1 means
  /// the combination over-performs. `coords` must have exactly two
  /// non-ALL positions, and the cube must materialize the four planes
  /// involved (true for any full CUBE).
  Result<double> Index(const std::string& aggregate_output_name,
                       const std::vector<Value>& coords) const;

  /// The cube's current relational form.
  Result<Table> ToTable() const;
  Result<Table> ToTable() override {
    return static_cast<const MaterializedCube*>(this)->ToTable();
  }

  /// CubeStoreInterface: one grouping set's plane, via Slice with
  /// wildcards in grouped positions and ALL elsewhere. `target` must be
  /// one of the spec's grouping sets.
  Result<Table> QuerySet(GroupingSet target) override;

  /// Checkpoints the cube — base data, tombstones, and every cell's exact
  /// scratchpad — to `path`. The Section 6 customers "compute and store the
  /// cube"; persisting scratchpads (not just final values) means algebraic
  /// aggregates keep maintaining correctly after a reload. Requires every
  /// aggregate to implement SerializeState (all built-ins do).
  Status SaveToFile(const std::string& path) const;

  /// Restores a cube checkpointed by SaveToFile. The caller supplies the
  /// same CubeSpec the cube was built with (expressions are not serialized);
  /// mismatched aggregate lists are detected.
  static Result<std::unique_ptr<MaterializedCube>> LoadFromFile(
      const CubeSpec& spec, const std::string& path);

  /// Number of live base rows.
  size_t num_base_rows() const override { return live_rows_; }

  const MaintenanceStats& maintenance_stats() const { return stats_; }
  const CubeSpec& spec() const override { return *spec_; }
  const char* kind() const override { return "materialized"; }

  /// The normalized grouping-set list, in store order.
  const std::vector<GroupingSet>& grouping_sets() const { return ctx_.sets; }

  /// The columnar view (codec + state layout). The state layout depends
  /// only on the aggregate list, so two cubes built from the same spec
  /// have byte-identical cell blocks — the property cross-cube merging
  /// (PartitionedCube) relies on.
  const cube_internal::ColumnarContext& columnar() const { return cc_; }

  /// Visits every maintained cell of grouping set `set_index` (an index
  /// into grouping_sets()): the decoded full-width key (ALL in
  /// aggregated-away positions) and the cell's state block. Read-only —
  /// callers may Merge the block's states into another same-spec cube's
  /// cells but must not mutate this one.
  void ForEachCell(size_t set_index,
                   const std::function<void(const std::vector<Value>& key,
                                            const char* block)>& fn) const;

  /// Live (non-tombstoned) base rows, copied out as a table.
  Result<Table> LiveRows() const;

 private:
  MaterializedCube() = default;

  // Evaluates key/agg expressions for base row `row` into the context's
  // column caches (rows appended by ApplyInsert).
  Status EvaluateRow(size_t row);

  // Grows the key dictionaries with row `row_id`'s key values and packs its
  // encoded key, re-laying-out the codec (and re-keying every store) when a
  // new code outgrows its bit field.
  Status AppendRowKey(size_t row_id);

  // Re-encodes every store's keys after a codec Relayout. Blocks are
  // adopted across, not cloned.
  void RelayoutAndRekey();

  // Recomputes aggregate `agg` of the cell keyed by packed `key` in set
  // `set_index` from live base rows.
  Status RecomputeAggregate(size_t set_index, const uint64_t* key,
                            size_t agg);

  std::unique_ptr<Table> base_;
  std::unique_ptr<CubeSpec> spec_;
  cube_internal::CubeContext ctx_;
  // The columnar view (key codec + state layout + packed row keys) and the
  // maintained per-set flat stores. cc_ must outlive stores_ — stores
  // destroy their cells through it — so declaration order matters here.
  cube_internal::ColumnarContext cc_;
  cube_internal::SetStores stores_;
  std::vector<bool> tombstone_;
  size_t live_rows_ = 0;
  // Value-equality index over live base rows, for delete lookup.
  std::unordered_multimap<std::vector<Value>, size_t, ValueVectorHash>
      row_index_;
  MaintenanceStats stats_;
  ChangeListener listener_;
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_MATERIALIZED_CUBE_H_
