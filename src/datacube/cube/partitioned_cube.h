#ifndef DATACUBE_CUBE_PARTITIONED_CUBE_H_
#define DATACUBE_CUBE_PARTITIONED_CUBE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "datacube/cube/cube_store.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/cube/thread_pool.h"

namespace datacube {

/// Prune accounting for one partitioned read: how many windows the store
/// held, how many the partition-key bounds let the scan skip.
struct PartitionPruneStats {
  size_t total = 0;
  size_t scanned = 0;
  size_t pruned = 0;
};

struct PartitionedCubeOptions {
  /// The INT64 base column rows are windowed by (typically a timestamp).
  std::string partition_column;
  /// Partition-key units per window. Window w covers keys in
  /// [w*width, (w+1)*width) — a key exactly on a boundary opens the next
  /// window. NULL keys collect in a dedicated NULL window that no
  /// key-range predicate ever selects and retention never drops.
  int64_t window_width = 1;
  /// Keep only the newest N windows (by window id, relative to the newest
  /// ingested window); 0 = unlimited. Adjustable later via SetRetention.
  int64_t retention_windows = 0;
  /// Schedule a compaction pass on the shared thread pool after ingest.
  bool background_compaction = true;
  /// Build options for per-window delta cubes and compaction rebuilds.
  CubeOptions cube;
};

/// The time-partitioned cube store: an ordered set of per-window
/// MaterializedCube deltas keyed by a partition column. High-rate ingest
/// appends to the newest window's open delta through the Section 4
/// incremental maintenance path; reads answer by merging partition cells
/// through the distributive/algebraic Merge protocol (holistic specs fall
/// back to recomputing over the concatenated live rows); a background
/// thread-pool task compacts cold multi-delta windows into one sealed
/// partition and drops windows past the retention horizon.
///
/// Partition lifecycle: **open** (the window's newest delta, mutable under
/// ingest) → **sealed** (frozen immutable delta(s) published to the
/// partition list) → **compacted** (all of a window's deltas rebuilt into
/// one cube) → **dropped** (aged out by retention). Out-of-order rows
/// whose window is already sealed open a fresh delta for that window — a
/// sealed cube is shared with readers and never mutated — and the next
/// compaction folds the late delta in.
///
/// Concurrency: the published partition list is an immutable snapshot
/// (copy-edit-publish under the writer mutex, like the serving layer's
/// catalog). A read pins one list version plus the open deltas' cells and
/// never observes a half-compacted store; compaction and retention swap
/// whole lists, and readers that pinned a dropped partition keep it alive
/// through their shared_ptrs.
class PartitionedCube : public CubeStoreInterface {
 public:
  /// An empty store for streaming ingest. The partition column must be an
  /// INT64 column of `base_schema`; decorations are not supported (merged
  /// cells have no representative row in any single partition's table).
  static Result<std::unique_ptr<PartitionedCube>> Create(
      const Schema& base_schema, const CubeSpec& spec,
      const PartitionedCubeOptions& options);

  /// Create + IngestRows over an existing table.
  static Result<std::unique_ptr<PartitionedCube>> Build(
      const Table& input, const CubeSpec& spec,
      const PartitionedCubeOptions& options);

  /// Restores a store checkpointed by SaveToFile (a directory). Every
  /// reloaded delta comes back sealed; ingest reopens windows as needed.
  static Result<std::unique_ptr<PartitionedCube>> LoadFromDir(
      const Schema& base_schema, const CubeSpec& spec,
      const PartitionedCubeOptions& options, const std::string& path);

  ~PartitionedCube() override;
  PartitionedCube(const PartitionedCube&) = delete;
  PartitionedCube& operator=(const PartitionedCube&) = delete;

  // CubeStoreInterface.
  const CubeSpec& spec() const override { return *spec_; }
  const char* kind() const override { return "partitioned"; }
  size_t num_base_rows() const override;
  Status ApplyInsert(const std::vector<Value>& row) override;
  Result<Table> QuerySet(GroupingSet target) override;
  Result<Table> ToTable() override;
  /// Checkpoints to directory `path`: a manifest plus one DATACUBE_CKPT_V1
  /// file per partition delta.
  Status SaveToFile(const std::string& path) const override;

  /// Batched ingest; each row must match the base schema.
  Status IngestRows(const Table& rows);

  /// Live base rows of every window overlapping [lo, hi] (inclusive
  /// bounds on the partition key; nullopt = unbounded), concatenated.
  /// The result is a superset of the rows matching the bounds — callers
  /// re-apply their WHERE — and excludes the NULL window whenever any
  /// bound is present (NULL fails every comparison). This is the planner's
  /// partition-pruned scan.
  Result<Table> PrunedRows(const std::optional<int64_t>& lo,
                           const std::optional<int64_t>& hi,
                           PartitionPruneStats* stats = nullptr) const;

  /// Synchronous compaction pass: seals every open delta (including the
  /// newest window's), rebuilds every multi-delta window into one cube,
  /// and applies retention. Returns the number of windows rebuilt.
  size_t CompactNow();

  /// Drops windows older than the retention horizon (newest window id −
  /// retention + 1). Returns the number of windows dropped. No-op when
  /// retention is unlimited; the NULL window is never dropped.
  size_t ApplyRetention();

  /// Adjusts the retention horizon (0 = unlimited). Takes effect on the
  /// next ApplyRetention / compaction pass.
  void SetRetention(int64_t windows) {
    retention_windows_.store(windows, std::memory_order_relaxed);
  }
  int64_t retention() const {
    return retention_windows_.load(std::memory_order_relaxed);
  }

  const PartitionedCubeOptions& options() const { return options_; }

  /// The schema ingested rows must match.
  const Schema& base_schema() const { return base_schema_; }

  /// One row of /partitions-style introspection.
  struct PartitionInfo {
    int64_t window_id = 0;
    bool null_window = false;
    /// "open", "sealed", or "compacted".
    const char* state = "open";
    size_t deltas = 0;
    size_t rows = 0;
  };
  std::vector<PartitionInfo> Partitions() const;

  /// Windows currently held (open or published).
  size_t num_partitions() const;

 private:
  // Window identity: the NULL window sorts first, then window ids
  // ascending, so .rbegin()/back() is always the newest real window.
  struct WindowKey {
    bool null_window = false;
    int64_t id = 0;
    bool operator<(const WindowKey& o) const {
      if (null_window != o.null_window) return null_window;
      return id < o.id;
    }
    bool operator==(const WindowKey& o) const {
      return null_window == o.null_window && id == o.id;
    }
  };

  /// One published window: immutable once it lands in a PartitionList.
  struct Partition {
    WindowKey key;
    bool compacted = false;
    /// Bumped every time this window's delta set changes; compaction
    /// publishes only if the epoch it read is still current (a late
    /// arrival sealed in between invalidates the rebuild).
    uint64_t epoch = 0;
    std::vector<std::shared_ptr<const MaterializedCube>> deltas;
    size_t rows = 0;
  };

  /// An immutable snapshot of the sealed/compacted partitions.
  struct PartitionList {
    std::vector<std::shared_ptr<const Partition>> parts;  // sorted by key
    uint64_t version = 0;
  };

  PartitionedCube() = default;

  Result<WindowKey> WindowOf(const Value& v) const;

  /// Merged relational read over every partition (optionally restricted
  /// to one grouping set).
  Result<Table> MergedTable(const std::optional<GroupingSet>& only);

  // All *Locked members require mu_.
  Status IngestRowLocked(const std::vector<Value>& row, size_t* late_rows);
  /// Moves open deltas into the published list as sealed. `all` seals the
  /// newest window too (compaction/checkpoint); otherwise only cold
  /// windows (every window but the newest) seal.
  void SealLocked(bool all);
  void PublishLocked(std::vector<std::shared_ptr<const Partition>> parts);
  std::shared_ptr<const Partition> FindLocked(const WindowKey& key) const;
  void UpdateGaugesLocked() const;

  size_t CompactPass(bool seal_newest);
  void MaybeScheduleCompaction();

  Schema base_schema_;
  std::unique_ptr<CubeSpec> spec_;
  PartitionedCubeOptions options_;
  size_t partition_col_ = 0;
  bool mergeable_ = true;
  std::atomic<int64_t> retention_windows_{0};

  mutable std::mutex mu_;
  /// Open (mutable) deltas per window, guarded by mu_ — reads fold their
  /// cells under the lock; sealed deltas are merged lock-free off the
  /// pinned list.
  std::map<WindowKey, std::unique_ptr<MaterializedCube>> open_;
  std::shared_ptr<const PartitionList> list_;  // guarded by mu_
  /// Newest real (non-NULL) window ever ingested, for retention.
  std::optional<int64_t> max_window_;

  /// Fire-and-forget carrier for background compaction on the shared cube
  /// ThreadPool; drained on destruction.
  std::unique_ptr<cube_internal::TaskGroup> compact_group_;
  std::atomic<bool> compaction_pending_{false};
  std::atomic<bool> shutdown_{false};
};

}  // namespace datacube

#endif  // DATACUBE_CUBE_PARTITIONED_CUBE_H_
