#include "datacube/cube/partial_cube.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "datacube/common/codec.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"

namespace datacube {

using cube_internal::CellHeader;
using cube_internal::CellStore;
using cube_internal::ColumnarContext;
using cube_internal::SetStores;

namespace {

// One bump per Query(): hit/miss counter plus cells folded on the miss path.
void PublishQueryStats(const PartialCube::QueryStats& qs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("datacube_partial_queries_total",
                 "Partial-cube queries by answer source",
                 {{"source",
                   qs.was_materialized ? "materialized" : "ancestor"}})
      .Inc();
  if (qs.cells_scanned > 0) {
    reg.GetCounter("datacube_partial_cells_scanned_total",
                   "Ancestor cells folded to answer partial-cube queries")
        .Inc(qs.cells_scanned);
  }
}

// The ancestor-folding contract: every aggregate merges AND none is
// holistic. Holistic functions are refused even when they happen to support
// Merge (count_distinct, mode) — their super-aggregates must come from base
// data, never from a rewrite.
Status ValidateAggregates(const cube_internal::CubeContext& ctx) {
  bool holistic = false;
  for (const AggregateFunctionPtr& agg : ctx.aggs) {
    if (agg->agg_class() == AggClass::kHolistic) holistic = true;
  }
  if (!ctx.all_mergeable || holistic) {
    return Status::InvalidArgument(
        "PartialCube requires mergeable (distributive/algebraic) aggregates; "
        "holistic aggregates must be answered from base data");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PartialCube>> PartialCube::Build(
    const Table& input, const CubeSpec& spec,
    const std::vector<GroupingSet>& views) {
  auto cube = std::unique_ptr<PartialCube>(new PartialCube());
  cube->base_ = std::make_unique<Table>(input);
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  // Materialize exactly the requested views (plus the core, which the
  // from-core computation needs anyway and HRU always selects).
  std::vector<GroupingSet> sets = views;
  size_t num_keys = spec.AllGroupExprs().size();
  sets.push_back(FullSet(num_keys));
  cube->spec_->explicit_sets = NormalizeSets(std::move(sets));

  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));
  DATACUBE_RETURN_IF_ERROR(ValidateAggregates(cube->ctx_));
  DATACUBE_ASSIGN_OR_RETURN(cube->cc_,
                            cube_internal::BuildColumnarContext(cube->ctx_));
  CubeStats stats;
  DATACUBE_ASSIGN_OR_RETURN(
      cube->stores_, cube_internal::ColumnarFromCore(cube->cc_, &stats));
  cube->views_ = cube->ctx_.sets;
  return cube;
}

Result<std::unique_ptr<PartialCube>> PartialCube::BuildWithBudget(
    const Table& input, const CubeSpec& spec, size_t budget_bytes) {
  return BuildWithBudget(input, spec, budget_bytes, /*observed=*/nullptr);
}

Result<std::unique_ptr<PartialCube>> PartialCube::BuildWithBudget(
    const Table& input, const CubeSpec& spec, size_t budget_bytes,
    const ObservedCellCounts* observed) {
  // Probe context over the core alone: the codec's per-column dictionaries
  // give the cardinality estimates and the state layout gives the per-cell
  // byte footprint the selection prices views with.
  CubeSpec probe = spec;
  size_t num_keys = spec.AllGroupExprs().size();
  probe.explicit_sets = std::vector<GroupingSet>{FullSet(num_keys)};
  DATACUBE_ASSIGN_OR_RETURN(cube_internal::CubeContext pctx,
                            cube_internal::BuildCubeContext(input, probe));
  DATACUBE_RETURN_IF_ERROR(ValidateAggregates(pctx));
  DATACUBE_ASSIGN_OR_RETURN(cube_internal::ColumnarContext pcc,
                            cube_internal::BuildColumnarContext(pctx));

  LatticeByteCostModel model;
  model.num_dims = num_keys;
  model.cardinalities = pcc.codec.Cardinalities();
  model.base_rows = input.num_rows();
  model.bytes_per_cell = static_cast<double>(
      pcc.words * sizeof(uint64_t) + pcc.layout.block_size);
  // Observed-cardinality feedback: actual per-set cell counts from a prior
  // materialization override the cardinality-product estimates, so the
  // greedy re-prices views with what the data really did.
  if (observed != nullptr) model.observed_cells = *observed;
  DATACUBE_ASSIGN_OR_RETURN(
      ViewSelection sel,
      SelectViewsByByteBudget(model, static_cast<double>(budget_bytes)));
  DATACUBE_ASSIGN_OR_RETURN(std::unique_ptr<PartialCube> cube,
                            Build(input, spec, sel.views));
  cube->budget_bytes_ = budget_bytes;
  cube->selection_ = std::move(sel);
  return cube;
}

size_t PartialCube::materialized_cells() const {
  size_t total = 0;
  for (const CellStore& s : stores_) total += s.size();
  return total;
}

PartialCube::ObservedCellCounts PartialCube::ObservedCells() const {
  ObservedCellCounts out;
  out.reserve(views_.size());
  for (size_t s = 0; s < views_.size(); ++s) {
    out.emplace_back(views_[s], static_cast<double>(stores_[s].size()));
  }
  return out;
}

Result<Table> PartialCube::ToTable() {
  Table out;
  for (size_t s = 0; s < views_.size(); ++s) {
    DATACUBE_ASSIGN_OR_RETURN(Table view, Query(views_[s]));
    if (s == 0) {
      out = std::move(view);
    } else {
      DATACUBE_RETURN_IF_ERROR(out.AppendTable(view));
    }
  }
  return out;
}

size_t PartialCube::materialized_bytes() const {
  size_t cell_bytes = cc_.words * sizeof(uint64_t) + cc_.layout.block_size;
  return materialized_cells() * cell_bytes;
}

Result<Table> PartialCube::AssembleSet(const CellStore& cells) const {
  std::vector<Field> fields;
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    fields.push_back(Field{ctx_.key_names[k], ctx_.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx_.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};
  out.Reserve(cells.size());
  Status row_status = Status::OK();
  cells.ForEach([&](const uint64_t* key, char* block) {
    if (!row_status.ok()) return;
    std::vector<Value> row = cc_.codec.DecodeKey(key);
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      Result<Value> v = ctx_.aggs[a]->FinalChecked(cc_.StateOf(block, a));
      if (!v.ok()) {
        row_status = v.status();
        return;
      }
      row.push_back(std::move(v).value());
    }
    row_status = out.AppendRow(row);
  });
  DATACUBE_RETURN_IF_ERROR(row_status);
  return out;
}

void PartialCube::RelayoutAndRekey() {
  std::vector<std::vector<std::pair<std::vector<Value>, char*>>> saved(
      stores_.size());
  for (size_t s = 0; s < stores_.size(); ++s) {
    saved[s].reserve(stores_[s].size());
    stores_[s].ForEach([&](const uint64_t* key, char* block) {
      saved[s].emplace_back(cc_.codec.DecodeKey(key), block);
    });
  }
  cc_.codec.Relayout();
  cc_.RepackRowKeys();
  for (size_t s = 0; s < stores_.size(); ++s) {
    CellStore fresh = cc_.MakeStore(stores_[s].arena());
    fresh.MutableStats() = stores_[s].stats();
    stores_[s].ReleaseAll();
    for (auto& [key, block] : saved[s]) {
      std::optional<std::vector<uint64_t>> packed =
          cc_.codec.EncodeKey(key, ctx_.sets[s]);
      fresh.InsertAdopt(packed->data(), block);
    }
    stores_[s] = std::move(fresh);
  }
}

Status PartialCube::AppendRowKey(size_t row_id) {
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    cc_.codec.CodeOfOrAdd(k, ctx_.key_columns[k][row_id]);
  }
  if (cc_.codec.needs_relayout()) {
    RelayoutAndRekey();  // RepackRowKeys covers the new row too
  } else {
    cc_.row_keys.resize((row_id + 1) * cc_.words, 0);
    cc_.codec.EncodeRow(ctx_.key_columns, row_id,
                        &cc_.row_keys[row_id * cc_.words]);
  }
  return Status::OK();
}

Status PartialCube::ApplyInsert(const std::vector<Value>& row) {
  DATACUBE_RETURN_IF_ERROR(base_->AppendRow(row));
  size_t row_id = base_->num_rows() - 1;
  // Extend the context's evaluated-column caches with the new row.
  std::vector<GroupExpr> group_exprs = spec_->AllGroupExprs();
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    DATACUBE_ASSIGN_OR_RETURN(Value v,
                              group_exprs[k].expr->Evaluate(*base_, row_id));
    ctx_.key_columns[k].push_back(std::move(v));
  }
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    const AggregateSpec& agg = spec_->aggregates[a];
    for (size_t i = 0; i < agg.args.size(); ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, agg.args[i]->Evaluate(*base_, row_id));
      ctx_.agg_args[a][i].push_back(std::move(v));
    }
  }
  DATACUBE_RETURN_IF_ERROR(AppendRowKey(row_id));
  std::vector<uint64_t> key(cc_.words);
  for (size_t s = 0; s < views_.size(); ++s) {
    std::vector<uint64_t> mask = cc_.codec.MaskForSet(views_[s]);
    const uint64_t* rk = cc_.RowKey(row_id);
    for (size_t w = 0; w < cc_.words; ++w) key[w] = rk[w] & mask[w];
    char* block = stores_[s].FindOrInsert(key.data());
    cc_.IterRow(block, row_id, nullptr);
  }
  return Status::OK();
}

Result<Table> PartialCube::Query(GroupingSet target) {
  if (target >> ctx_.num_keys) {
    return Status::InvalidArgument("query references unknown grouping column");
  }
  last_stats_ = QueryStats{};
  obs::ScopedSpan span("partial_cube_query");
  if (span.active()) {
    span.Attr("target", GroupingSetToString(target, ctx_.key_names));
  }
  // SQL semantics: the empty grouping set produces exactly one row even for
  // empty input (the aggregate over the empty set).
  auto assemble_empty_grand_total = [&]() -> Result<Table> {
    CellStore one = cc_.MakeStore();
    std::vector<uint64_t> zero(cc_.words, 0);
    one.FindOrInsert(zero.data());
    return AssembleSet(one);
  };
  // Materialized directly?
  auto it = std::find(views_.begin(), views_.end(), target);
  if (it != views_.end()) {
    size_t s = static_cast<size_t>(it - views_.begin());
    last_stats_.answered_from = target;
    last_stats_.was_materialized = true;
    if (span.active()) span.Attr("source", "materialized");
    PublishQueryStats(last_stats_);
    if (target == 0 && stores_[s].size() == 0) {
      return assemble_empty_grand_total();
    }
    return AssembleSet(stores_[s]);
  }
  // Aggregate the cheapest (fewest actual cells) materialized ancestor.
  size_t best = views_.size();
  for (size_t i = 0; i < views_.size(); ++i) {
    if ((views_[i] & target) != target) continue;
    if (best == views_.size() || stores_[i].size() < stores_[best].size()) {
      best = i;
    }
  }
  if (best == views_.size()) {
    return Status::Internal("no ancestor view found (core missing?)");
  }
  last_stats_.answered_from = views_[best];
  last_stats_.cells_scanned = stores_[best].size();
  if (span.active()) {
    span.Attr("source", "fold from " + GroupingSetToString(views_[best],
                                                           ctx_.key_names));
    span.Attr("cells_scanned", static_cast<uint64_t>(stores_[best].size()));
  }
  PublishQueryStats(last_stats_);

  std::vector<uint64_t> mask = cc_.codec.MaskForSet(target);
  std::vector<uint64_t> key(cc_.words);
  CellStore folded = cc_.MakeStore();
  Status merge_status = Status::OK();
  stores_[best].ForEach([&](const uint64_t* pkey, char* pblock) {
    for (size_t w = 0; w < mask.size(); ++w) key[w] = pkey[w] & mask[w];
    Status st = cc_.MergeCell(folded.FindOrInsert(key.data()), pblock, nullptr);
    if (!st.ok() && merge_status.ok()) merge_status = st;
  });
  DATACUBE_RETURN_IF_ERROR(merge_status);
  if (target == 0 && folded.size() == 0) {
    return assemble_empty_grand_total();
  }
  return AssembleSet(folded);
}

namespace {

constexpr const char* kPartialCubeMagic = "DATACUBE_PCUBE_V1\n";

Result<DataType> DataTypeFromName(const std::string& name) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kFloat64,
                     DataType::kString, DataType::kDate}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::ParseError("checkpoint: unknown data type " + name);
}

}  // namespace

Status PartialCube::SaveToFile(const std::string& path) const {
  std::string out = kPartialCubeMagic;
  // Base schema.
  EncodeCount(base_->num_columns(), &out);
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    const Field& f = base_->schema().field(c);
    EncodeValue(Value::String(f.name), &out);
    EncodeValue(Value::String(DataTypeName(f.type)), &out);
  }
  // Base rows.
  EncodeCount(base_->num_rows(), &out);
  for (size_t r = 0; r < base_->num_rows(); ++r) {
    for (size_t c = 0; c < base_->num_columns(); ++c) {
      EncodeValue(base_->GetValue(r, c), &out);
    }
  }
  // The byte budget this cube was built under, then the view selection and
  // every cell's exact scratchpad. Keys are decoded to Values on the way
  // out, so the checkpoint stays codec-layout-independent.
  EncodeCount(budget_bytes_, &out);
  EncodeCount(ctx_.aggs.size(), &out);
  EncodeCount(views_.size(), &out);
  for (size_t s = 0; s < views_.size(); ++s) {
    EncodeCount(views_[s], &out);
    EncodeCount(stores_[s].size(), &out);
    Status cell_status = Status::OK();
    stores_[s].ForEach([&](const uint64_t* key, char* block) {
      if (!cell_status.ok()) return;
      for (const Value& v : cc_.codec.DecodeKey(key)) EncodeValue(v, &out);
      const CellHeader* header = ColumnarContext::Header(block);
      EncodeValue(Value::Int64(header->count), &out);
      EncodeValue(Value::Int64(static_cast<int64_t>(header->repr_row)), &out);
      EncodeValue(Value::Bool(header->has_repr), &out);
      for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
        std::string blob;
        cell_status =
            ctx_.aggs[a]->SerializeState(cc_.StateOf(block, a), &blob);
        if (!cell_status.ok()) return;
        EncodeBlob(blob, &out);
      }
    });
    DATACUBE_RETURN_IF_ERROR(cell_status);
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << out;
  return file.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::unique_ptr<PartialCube>> PartialCube::LoadFromFile(
    const CubeSpec& spec, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();
  if (data.rfind(kPartialCubeMagic, 0) != 0) {
    return Status::ParseError("not a partial-cube checkpoint: " + path);
  }
  size_t pos = std::string(kPartialCubeMagic).size();

  // Base schema + rows.
  DATACUBE_ASSIGN_OR_RETURN(uint64_t ncols, DecodeCount(data, &pos));
  std::vector<Field> fields;
  for (uint64_t c = 0; c < ncols; ++c) {
    DATACUBE_ASSIGN_OR_RETURN(Value name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(Value type_name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(DataType type,
                              DataTypeFromName(type_name.string_value()));
    fields.push_back(Field{name.string_value(), type});
  }
  Table base{Schema{std::move(fields)}};
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nrows, DecodeCount(data, &pos));
  base.Reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(base.AppendRow(row));
  }

  DATACUBE_ASSIGN_OR_RETURN(uint64_t budget, DecodeCount(data, &pos));
  DATACUBE_ASSIGN_OR_RETURN(uint64_t naggs, DecodeCount(data, &pos));
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nviews, DecodeCount(data, &pos));

  auto cube = std::unique_ptr<PartialCube>(new PartialCube());
  cube->base_ = std::make_unique<Table>(std::move(base));
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  cube->budget_bytes_ = static_cast<size_t>(budget);

  // The stored selection is authoritative over anything current statistics
  // would pick, and the evaluation context must be built over exactly those
  // grouping sets — which are interleaved with the cell payloads. Stage the
  // decoded cells per view, then build the context and insert.
  std::vector<GroupingSet> stored_views;
  struct StagedCell {
    std::vector<Value> key;
    int64_t count = 0;
    size_t repr_row = 0;
    bool has_repr = false;
    std::vector<std::string> blobs;
  };
  size_t num_keys = spec.AllGroupExprs().size();
  std::vector<std::vector<StagedCell>> staged;
  for (uint64_t s = 0; s < nviews; ++s) {
    DATACUBE_ASSIGN_OR_RETURN(uint64_t mask, DecodeCount(data, &pos));
    stored_views.push_back(static_cast<GroupingSet>(mask));
    DATACUBE_ASSIGN_OR_RETURN(uint64_t ncells, DecodeCount(data, &pos));
    std::vector<StagedCell> cells;
    cells.reserve(ncells);
    for (uint64_t i = 0; i < ncells; ++i) {
      StagedCell cell;
      cell.key.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
        cell.key.push_back(std::move(v));
      }
      DATACUBE_ASSIGN_OR_RETURN(Value count, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value repr, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value has_repr, DecodeValue(data, &pos));
      cell.count = count.int64_value();
      cell.repr_row = static_cast<size_t>(repr.int64_value());
      cell.has_repr = has_repr.bool_value();
      cell.blobs.reserve(naggs);
      for (uint64_t a = 0; a < naggs; ++a) {
        DATACUBE_ASSIGN_OR_RETURN(std::string blob, DecodeBlob(data, &pos));
        cell.blobs.push_back(std::move(blob));
      }
      cells.push_back(std::move(cell));
    }
    staged.push_back(std::move(cells));
  }

  // Rebuild the evaluation context over exactly the stored views.
  cube->spec_->explicit_sets = stored_views;
  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));
  DATACUBE_RETURN_IF_ERROR(ValidateAggregates(cube->ctx_));
  if (naggs != cube->ctx_.aggs.size()) {
    return Status::InvalidArgument(
        "checkpoint aggregate count does not match the supplied spec");
  }
  if (cube->ctx_.sets != stored_views) {
    // NormalizeSets reordered or deduped — remap staging to context order.
    std::vector<std::vector<StagedCell>> reordered(cube->ctx_.sets.size());
    for (size_t s = 0; s < stored_views.size(); ++s) {
      auto it = std::find(cube->ctx_.sets.begin(), cube->ctx_.sets.end(),
                          stored_views[s]);
      if (it == cube->ctx_.sets.end()) {
        return Status::ParseError("checkpoint view vanished on normalize");
      }
      reordered[static_cast<size_t>(it - cube->ctx_.sets.begin())] =
          std::move(staged[s]);
    }
    staged = std::move(reordered);
  }
  DATACUBE_ASSIGN_OR_RETURN(cube->cc_,
                            cube_internal::BuildColumnarContext(cube->ctx_));
  cube->views_ = cube->ctx_.sets;

  // Re-encodes a checkpointed Value key under the current codec, growing
  // the dictionaries for any key value no longer present in the base data.
  auto encode_key = [&cube](const std::vector<Value>& key, GroupingSet set) {
    std::optional<std::vector<uint64_t>> packed =
        cube->cc_.codec.EncodeKey(key, set);
    if (!packed) {
      for (size_t k = 0; k < cube->ctx_.num_keys; ++k) {
        if (IsGrouped(set, k)) cube->cc_.codec.CodeOfOrAdd(k, key[k]);
      }
      if (cube->cc_.codec.needs_relayout()) cube->RelayoutAndRekey();
      packed = cube->cc_.codec.EncodeKey(key, set);
    }
    return std::move(*packed);
  };
  for (size_t s = 0; s < cube->ctx_.sets.size(); ++s) {
    cube->stores_.push_back(cube->cc_.MakeStore());
    for (StagedCell& cell : staged[s]) {
      std::vector<uint64_t> packed = encode_key(cell.key, cube->ctx_.sets[s]);
      char* block = cube->stores_[s].FindOrInsert(packed.data());
      CellHeader* header = ColumnarContext::Header(block);
      header->count = cell.count;
      header->repr_row = cell.repr_row;
      header->has_repr = cell.has_repr;
      for (size_t a = 0; a < cube->ctx_.aggs.size(); ++a) {
        size_t blob_pos = 0;
        // FindOrInsert initialized the slot; replace it with the
        // checkpointed scratchpad.
        const AggregateFunction& fn = *cube->ctx_.aggs[a];
        char* slot = block + cube->cc_.layout.slots[a].offset;
        fn.DestroyAt(slot);
        DATACUBE_RETURN_IF_ERROR(
            fn.DeserializeAt(cell.blobs[a], &blob_pos, slot));
      }
    }
  }
  return cube;
}

}  // namespace datacube
