#include "datacube/cube/partial_cube.h"

#include <algorithm>

#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"

namespace datacube {

namespace {

// One bump per Query(): hit/miss counter plus cells folded on the miss path.
void PublishQueryStats(const PartialCube::QueryStats& qs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("datacube_partial_queries_total",
                 "Partial-cube queries by answer source",
                 {{"source",
                   qs.was_materialized ? "materialized" : "ancestor"}})
      .Inc();
  if (qs.cells_scanned > 0) {
    reg.GetCounter("datacube_partial_cells_scanned_total",
                   "Ancestor cells folded to answer partial-cube queries")
        .Inc(qs.cells_scanned);
  }
}

}  // namespace

using cube_internal::Cell;
using cube_internal::CellMap;
using cube_internal::SetMaps;

Result<std::unique_ptr<PartialCube>> PartialCube::Build(
    const Table& input, const CubeSpec& spec,
    const std::vector<GroupingSet>& views) {
  auto cube = std::unique_ptr<PartialCube>(new PartialCube());
  cube->base_ = std::make_unique<Table>(input);
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  // Materialize exactly the requested views (plus the core, which the
  // from-core computation needs anyway and HRU always selects).
  std::vector<GroupingSet> sets = views;
  size_t num_keys = spec.AllGroupExprs().size();
  sets.push_back(FullSet(num_keys));
  cube->spec_->explicit_sets = NormalizeSets(std::move(sets));

  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));
  if (!cube->ctx_.all_mergeable) {
    return Status::InvalidArgument(
        "PartialCube requires mergeable (distributive/algebraic) aggregates");
  }
  CubeStats stats;
  DATACUBE_ASSIGN_OR_RETURN(cube->maps_,
                            cube_internal::ComputeFromCore(cube->ctx_, &stats));
  cube->views_ = cube->ctx_.sets;
  return cube;
}

size_t PartialCube::materialized_cells() const {
  size_t total = 0;
  for (const CellMap& m : maps_) total += m.size();
  return total;
}

Result<Table> PartialCube::AssembleSet(const CellMap& cells) const {
  std::vector<Field> fields;
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    fields.push_back(Field{ctx_.key_names[k], ctx_.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx_.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};
  out.Reserve(cells.size());
  for (const auto& [key, cell] : cells) {
    std::vector<Value> row = key;
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      DATACUBE_ASSIGN_OR_RETURN(
          Value v, ctx_.aggs[a]->FinalChecked(cell.states[a].get()));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Status PartialCube::ApplyInsert(const std::vector<Value>& row) {
  DATACUBE_RETURN_IF_ERROR(base_->AppendRow(row));
  size_t row_id = base_->num_rows() - 1;
  // Extend the context's evaluated-column caches with the new row.
  std::vector<GroupExpr> group_exprs = spec_->AllGroupExprs();
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    DATACUBE_ASSIGN_OR_RETURN(Value v,
                              group_exprs[k].expr->Evaluate(*base_, row_id));
    ctx_.key_columns[k].push_back(std::move(v));
  }
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    const AggregateSpec& agg = spec_->aggregates[a];
    for (size_t i = 0; i < agg.args.size(); ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, agg.args[i]->Evaluate(*base_, row_id));
      ctx_.agg_args[a][i].push_back(std::move(v));
    }
  }
  for (size_t s = 0; s < views_.size(); ++s) {
    std::vector<Value> key = ctx_.MaskedKey(row_id, views_[s]);
    auto [it, inserted] = maps_[s].try_emplace(std::move(key));
    if (inserted) it->second = ctx_.NewCell();
    ctx_.IterRow(&it->second, row_id, nullptr);
  }
  return Status::OK();
}

Result<Table> PartialCube::Query(GroupingSet target) {
  if (target >> ctx_.num_keys) {
    return Status::InvalidArgument("query references unknown grouping column");
  }
  last_stats_ = QueryStats{};
  obs::ScopedSpan span("partial_cube_query");
  if (span.active()) {
    span.Attr("target", GroupingSetToString(target, ctx_.key_names));
  }
  // Materialized directly?
  auto it = std::find(views_.begin(), views_.end(), target);
  if (it != views_.end()) {
    last_stats_.answered_from = target;
    last_stats_.was_materialized = true;
    if (span.active()) span.Attr("source", "materialized");
    PublishQueryStats(last_stats_);
    return AssembleSet(maps_[static_cast<size_t>(it - views_.begin())]);
  }
  // Aggregate the cheapest (fewest actual cells) materialized ancestor.
  size_t best = views_.size();
  for (size_t i = 0; i < views_.size(); ++i) {
    if ((views_[i] & target) != target) continue;
    if (best == views_.size() || maps_[i].size() < maps_[best].size()) {
      best = i;
    }
  }
  if (best == views_.size()) {
    return Status::Internal("no ancestor view found (core missing?)");
  }
  last_stats_.answered_from = views_[best];
  last_stats_.cells_scanned = maps_[best].size();
  if (span.active()) {
    span.Attr("source", "fold from " +
                            GroupingSetToString(views_[best], ctx_.key_names));
    span.Attr("cells_scanned", static_cast<uint64_t>(maps_[best].size()));
  }
  PublishQueryStats(last_stats_);

  CellMap result;
  for (const auto& [key, cell] : maps_[best]) {
    std::vector<Value> child_key = ctx_.ProjectKey(key, target);
    auto [cit, inserted] = result.try_emplace(std::move(child_key));
    if (inserted) cit->second = ctx_.NewCell();
    DATACUBE_RETURN_IF_ERROR(ctx_.MergeCell(&cit->second, cell, nullptr));
  }
  return AssembleSet(result);
}

}  // namespace datacube
