#include "datacube/cube/materialized_cube.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "datacube/common/codec.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"

namespace datacube {

using cube_internal::CellHeader;
using cube_internal::CellStore;
using cube_internal::ColumnarContext;
using cube_internal::SetStores;

namespace {

// Mirrors one maintenance operation's MaintenanceStats delta into the global
// registry (the cumulative datacube_maintenance_* counters) on scope exit,
// including early error returns. The per-instance struct stays the exact
// per-cube view; the registry aggregates across all cubes in the process.
class ScopedMaintenancePublish {
 public:
  explicit ScopedMaintenancePublish(const MaintenanceStats* stats)
      : stats_(stats), before_(*stats) {}
  ScopedMaintenancePublish(const ScopedMaintenancePublish&) = delete;
  ScopedMaintenancePublish& operator=(const ScopedMaintenancePublish&) = delete;
  ~ScopedMaintenancePublish() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto inc = [&reg](const char* name, const char* help, uint64_t delta) {
      if (delta != 0) reg.GetCounter(name, help).Inc(delta);
    };
    inc("datacube_maintenance_inserts_total",
        "Base rows folded into maintained cubes",
        stats_->inserts - before_.inserts);
    inc("datacube_maintenance_deletes_total",
        "Base rows removed from maintained cubes",
        stats_->deletes - before_.deletes);
    inc("datacube_maintenance_cells_updated_total",
        "Cube cells updated in place by maintenance",
        stats_->cells_updated - before_.cells_updated);
    inc("datacube_maintenance_cells_skipped_total",
        "Cube cells skipped by the maintenance short-circuit",
        stats_->cells_skipped - before_.cells_skipped);
    inc("datacube_maintenance_cells_recomputed_total",
        "Cube cells recomputed from base data (delete-holistic path)",
        stats_->cells_recomputed - before_.cells_recomputed);
    inc("datacube_maintenance_recompute_rows_scanned_total",
        "Base rows re-scanned during maintenance recomputes",
        stats_->recompute_rows_scanned - before_.recompute_rows_scanned);
  }

 private:
  const MaintenanceStats* stats_;
  MaintenanceStats before_;
};

}  // namespace

Result<std::unique_ptr<MaterializedCube>> MaterializedCube::Build(
    const Table& input, const CubeSpec& spec, const CubeOptions& options) {
  auto cube = std::unique_ptr<MaterializedCube>(new MaterializedCube());
  cube->base_ = std::make_unique<Table>(input);
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));
  DATACUBE_ASSIGN_OR_RETURN(cube->cc_,
                            cube_internal::BuildColumnarContext(cube->ctx_));

  CubeStats build_stats;
  Result<SetStores> stores = [&]() -> Result<SetStores> {
    switch (options.algorithm) {
      case CubeAlgorithm::kNaive2N:
        return cube_internal::ColumnarNaive2N(cube->cc_, &build_stats);
      case CubeAlgorithm::kUnionGroupBy:
        return cube_internal::ColumnarUnionGroupBy(cube->cc_, &build_stats);
      case CubeAlgorithm::kArrayCube:
        return cube_internal::ColumnarArrayCube(cube->cc_, options,
                                                &build_stats);
      case CubeAlgorithm::kSortRollup:
        return cube_internal::ColumnarSortRollup(cube->cc_, &build_stats);
      case CubeAlgorithm::kAuto:
      case CubeAlgorithm::kFromCore:
      default:
        return cube_internal::ColumnarFromCore(cube->cc_, &build_stats);
    }
  }();
  if (!stores.ok()) return stores.status();
  cube->stores_ = std::move(stores).value();

  cube->tombstone_.assign(input.num_rows(), false);
  cube->live_rows_ = input.num_rows();
  for (size_t r = 0; r < input.num_rows(); ++r) {
    cube->row_index_.emplace(input.GetRow(r), r);
  }
  return cube;
}

Status MaterializedCube::EvaluateRow(size_t row) {
  std::vector<GroupExpr> group_exprs = spec_->AllGroupExprs();
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    DATACUBE_ASSIGN_OR_RETURN(Value v,
                              group_exprs[k].expr->Evaluate(*base_, row));
    ctx_.key_columns[k].push_back(std::move(v));
  }
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    const AggregateSpec& agg = spec_->aggregates[a];
    for (size_t i = 0; i < agg.args.size(); ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, agg.args[i]->Evaluate(*base_, row));
      ctx_.agg_args[a][i].push_back(std::move(v));
    }
  }
  return Status::OK();
}

void MaterializedCube::RelayoutAndRekey() {
  // Decode every cell key under the old layout before it changes.
  std::vector<std::vector<std::pair<std::vector<Value>, char*>>> saved(
      stores_.size());
  for (size_t s = 0; s < stores_.size(); ++s) {
    saved[s].reserve(stores_[s].size());
    stores_[s].ForEach([&](const uint64_t* key, char* block) {
      saved[s].emplace_back(cc_.codec.DecodeKey(key), block);
    });
  }
  cc_.codec.Relayout();
  cc_.RepackRowKeys();
  for (size_t s = 0; s < stores_.size(); ++s) {
    // Fresh stores pick up the new key width; the blocks themselves (and
    // their arenas) are untouched — only the keys are re-encoded.
    CellStore fresh = cc_.MakeStore(stores_[s].arena());
    fresh.MutableStats() = stores_[s].stats();
    stores_[s].ReleaseAll();
    for (auto& [key, block] : saved[s]) {
      // Every decoded value is still in the (grown) dictionary.
      std::optional<std::vector<uint64_t>> packed =
          cc_.codec.EncodeKey(key, ctx_.sets[s]);
      fresh.InsertAdopt(packed->data(), block);
    }
    stores_[s] = std::move(fresh);
  }
}

Status MaterializedCube::AppendRowKey(size_t row_id) {
  // Grow the dictionaries first: a new code can outgrow its bit field, and
  // packing must only happen under a layout that fits it.
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    cc_.codec.CodeOfOrAdd(k, ctx_.key_columns[k][row_id]);
  }
  if (cc_.codec.needs_relayout()) {
    RelayoutAndRekey();  // RepackRowKeys covers the new row too
  } else {
    cc_.row_keys.resize((row_id + 1) * cc_.words, 0);
    cc_.codec.EncodeRow(ctx_.key_columns, row_id,
                        &cc_.row_keys[row_id * cc_.words]);
  }
  return Status::OK();
}

Status MaterializedCube::ApplyInsert(const std::vector<Value>& row) {
  ScopedMaintenancePublish publish(&stats_);
  obs::ScopedSpan span("maintain_insert");
  DATACUBE_RETURN_IF_ERROR(base_->AppendRow(row));
  size_t row_id = base_->num_rows() - 1;
  DATACUBE_RETURN_IF_ERROR(EvaluateRow(row_id));
  DATACUBE_RETURN_IF_ERROR(AppendRowKey(row_id));
  tombstone_.push_back(false);
  ++live_rows_;
  row_index_.emplace(row, row_id);
  ++stats_.inserts;

  // Visit the row's cell in each grouping set — 2^N scratchpad visits —
  // finest set first, so the paper's short-circuit applies: once the value
  // "loses" at some set, every subset of that set is skipped.
  Value argv[8];
  std::vector<uint64_t> key(cc_.words);
  std::vector<GroupingSet> lost_at;
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    GroupingSet set = ctx_.sets[s];
    bool dominated = std::any_of(
        lost_at.begin(), lost_at.end(),
        [set](GroupingSet loser) { return (set & loser) == set; });
    if (dominated) {
      ++stats_.cells_skipped;
      continue;
    }
    std::vector<uint64_t> mask = cc_.codec.MaskForSet(set);
    const uint64_t* rk = cc_.RowKey(row_id);
    for (size_t w = 0; w < cc_.words; ++w) key[w] = rk[w] & mask[w];
    bool inserted = false;
    char* block = stores_[s].FindOrInsert(key.data(), &inserted);
    CellHeader* header = ColumnarContext::Header(block);

    // A cell can be skipped outright only when no aggregate can change.
    bool any_change = inserted;
    for (size_t a = 0; a < ctx_.aggs.size() && !any_change; ++a) {
      const auto& arg_columns = ctx_.agg_args[a];
      for (size_t i = 0; i < arg_columns.size(); ++i) {
        argv[i] = arg_columns[i][row_id];
      }
      any_change = ctx_.aggs[a]->InsertMightChange(cc_.StateOf(block, a), argv,
                                                   arg_columns.size());
    }
    if (!any_change) {
      // The row still belongs to the group even though no scratchpad needs
      // an update; keep the membership count exact for cell eviction.
      ++header->count;
      lost_at.push_back(set);
      ++stats_.cells_skipped;
      continue;
    }
    cc_.IterRow(block, row_id, nullptr);
    ++stats_.cells_updated;
    if (listener_) {
      listener_(CellChange{set, cc_.codec.DecodeKey(key.data()),
                           inserted ? CellChange::Op::kCreated
                                    : CellChange::Op::kUpdated});
    }
  }
  return Status::OK();
}

Status MaterializedCube::RecomputeAggregate(size_t set_index,
                                            const uint64_t* key, size_t agg) {
  obs::ScopedSpan span("recompute_aggregate");
  char* block = stores_[set_index].Find(key);
  if (block == nullptr) {
    return Status::Internal("recompute target cell missing");
  }
  GroupingSet set = ctx_.sets[set_index];
  if (span.active()) {
    span.Attr("set", GroupingSetToString(set, ctx_.key_names));
  }
  const AggregateFunction& fn = *ctx_.aggs[agg];
  char* slot = block + cc_.layout.slots[agg].offset;
  fn.DestroyAt(slot);
  fn.InitAt(slot);
  AggState* state = cc_.StateOf(block, agg);
  std::vector<uint64_t> mask = cc_.codec.MaskForSet(set);
  Value argv[8];
  const auto& arg_columns = ctx_.agg_args[agg];
  for (size_t row = 0; row < base_->num_rows(); ++row) {
    if (tombstone_[row]) continue;
    // Does this live row fall in the cell?
    const uint64_t* rk = cc_.RowKey(row);
    bool match = true;
    for (size_t w = 0; w < cc_.words && match; ++w) {
      match = (rk[w] & mask[w]) == key[w];
    }
    if (!match) continue;
    for (size_t i = 0; i < arg_columns.size(); ++i) {
      argv[i] = arg_columns[i][row];
    }
    fn.Iter(state, argv, arg_columns.size());
    ++stats_.recompute_rows_scanned;
  }
  ++stats_.cells_recomputed;
  return Status::OK();
}

Status MaterializedCube::ApplyDelete(const std::vector<Value>& row) {
  ScopedMaintenancePublish publish(&stats_);
  obs::ScopedSpan span("maintain_delete");
  // Find a live base row with these values.
  auto range = row_index_.equal_range(row);
  size_t row_id = base_->num_rows();
  for (auto it = range.first; it != range.second; ++it) {
    if (!tombstone_[it->second]) {
      row_id = it->second;
      row_index_.erase(it);
      break;
    }
  }
  if (row_id == base_->num_rows()) {
    return Status::NotFound("ApplyDelete: no matching live base row");
  }
  tombstone_[row_id] = true;
  --live_rows_;
  ++stats_.deletes;

  Value argv[8];
  std::vector<uint64_t> key(cc_.words);
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    GroupingSet set = ctx_.sets[s];
    std::vector<uint64_t> mask = cc_.codec.MaskForSet(set);
    const uint64_t* rk = cc_.RowKey(row_id);
    for (size_t w = 0; w < cc_.words; ++w) key[w] = rk[w] & mask[w];
    char* block = stores_[s].Find(key.data());
    if (block == nullptr) {
      return Status::Internal("delete touches a missing cube cell");
    }
    CellHeader* header = ColumnarContext::Header(block);
    if (--header->count == 0) {
      // The group emptied: drop the cell, as a recomputed cube would.
      std::vector<Value> decoded = cc_.codec.DecodeKey(key.data());
      stores_[s].Erase(key.data());
      ++stats_.cells_updated;
      if (listener_) {
        listener_(
            CellChange{set, std::move(decoded), CellChange::Op::kErased});
      }
      continue;
    }
    bool updated = false;
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      const AggregateFunction& fn = *ctx_.aggs[a];
      const auto& arg_columns = ctx_.agg_args[a];
      for (size_t i = 0; i < arg_columns.size(); ++i) {
        argv[i] = arg_columns[i][row_id];
      }
      if (fn.delete_class() == DeleteClass::kDeletable) {
        DATACUBE_RETURN_IF_ERROR(
            fn.Remove(cc_.StateOf(block, a), argv, arg_columns.size()));
        updated = true;
      } else if (fn.RemoveMightChange(cc_.StateOf(block, a), argv,
                                      arg_columns.size())) {
        // Delete-holistic (MIN/MAX losing its incumbent): recompute from
        // base data — the paper's expensive path.
        DATACUBE_RETURN_IF_ERROR(RecomputeAggregate(s, key.data(), a));
        updated = true;
      } else {
        ++stats_.cells_skipped;
      }
    }
    if (updated) {
      ++stats_.cells_updated;
      if (listener_) {
        listener_(CellChange{set, cc_.codec.DecodeKey(key.data()),
                             CellChange::Op::kUpdated});
      }
    }
  }
  return Status::OK();
}

Status MaterializedCube::ApplyUpdate(const std::vector<Value>& old_row,
                                     const std::vector<Value>& new_row) {
  // Section 6: "update is just delete plus insert". Validate the delete
  // first so a failed update leaves the cube untouched.
  bool exists = false;
  auto range = row_index_.equal_range(old_row);
  for (auto it = range.first; it != range.second; ++it) {
    if (!tombstone_[it->second]) exists = true;
  }
  if (!exists) {
    return Status::NotFound("ApplyUpdate: old row not present");
  }
  DATACUBE_RETURN_IF_ERROR(ApplyDelete(old_row));
  return ApplyInsert(new_row);
}

Result<Table> MaterializedCube::DrillDown(const std::vector<Value>& coords,
                                          size_t dimension) const {
  if (coords.size() != ctx_.num_keys || dimension >= ctx_.num_keys) {
    return Status::InvalidArgument("DrillDown: bad coordinates");
  }
  if (!coords[dimension].is_all()) {
    return Status::InvalidArgument(
        "DrillDown: the drilled dimension must currently be ALL");
  }
  std::vector<SliceCoord> slice;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (k == dimension) {
      slice.push_back(SliceCoord::Wildcard());
    } else if (coords[k].is_all()) {
      slice.push_back(SliceCoord::AllPlane());
    } else {
      slice.push_back(SliceCoord::Fixed(coords[k]));
    }
  }
  return Slice(slice);
}

Result<Table> MaterializedCube::RollUp(const std::vector<Value>& coords,
                                       size_t dimension) const {
  if (coords.size() != ctx_.num_keys || dimension >= ctx_.num_keys) {
    return Status::InvalidArgument("RollUp: bad coordinates");
  }
  if (coords[dimension].is_all()) {
    return Status::InvalidArgument(
        "RollUp: the rolled dimension is already ALL");
  }
  std::vector<SliceCoord> slice;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (k == dimension || coords[k].is_all()) {
      slice.push_back(SliceCoord::AllPlane());
    } else {
      slice.push_back(SliceCoord::Fixed(coords[k]));
    }
  }
  return Slice(slice);
}

Result<Table> MaterializedCube::Slice(
    const std::vector<SliceCoord>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("Slice: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  // The requested grouping set: concrete wherever the slice fixes or
  // enumerates a dimension; ALL where it asks for the super-aggregate plane.
  GroupingSet set = 0;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (coords[k].kind != SliceCoord::Kind::kAllPlane) set |= (1ULL << k);
  }
  auto set_it = std::find(ctx_.sets.begin(), ctx_.sets.end(), set);
  if (set_it == ctx_.sets.end()) {
    return Status::NotFound("grouping set not materialized in this cube");
  }
  size_t s = static_cast<size_t>(set_it - ctx_.sets.begin());

  std::vector<Field> fields;
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    fields.push_back(Field{ctx_.key_names[k], ctx_.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx_.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};

  // Resolve fixed coordinates to codes once; a fixed value outside the
  // dictionary matches no cell.
  std::vector<std::pair<size_t, uint64_t>> fixed;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (coords[k].kind != SliceCoord::Kind::kFixed) continue;
    std::optional<uint64_t> code = cc_.codec.CodeOf(k, coords[k].value);
    if (!code) return out;
    fixed.emplace_back(k, *code);
  }
  Status row_status = Status::OK();
  stores_[s].ForEach([&](const uint64_t* key, char* block) {
    if (!row_status.ok()) return;
    for (const auto& [k, code] : fixed) {
      if (cc_.codec.CodeAt(key, k) != code) return;
    }
    std::vector<Value> row = cc_.codec.DecodeKey(key);
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      Result<Value> v = ctx_.aggs[a]->FinalChecked(cc_.StateOf(block, a));
      if (!v.ok()) {
        row_status = v.status();
        return;
      }
      row.push_back(std::move(v).value());
    }
    row_status = out.AppendRow(row);
  });
  DATACUBE_RETURN_IF_ERROR(row_status);
  return out;
}

Result<Value> MaterializedCube::ValueAt(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("ValueAt: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  size_t agg = ctx_.aggs.size();
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    if (name == aggregate_output_name) {
      agg = a;
      break;
    }
  }
  if (agg == ctx_.aggs.size()) {
    return Status::NotFound("no aggregate named " + aggregate_output_name);
  }
  GroupingSet set = 0;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (!coords[k].is_all()) set |= (1ULL << k);
  }
  auto set_it = std::find(ctx_.sets.begin(), ctx_.sets.end(), set);
  if (set_it == ctx_.sets.end()) {
    return Status::NotFound("grouping set not materialized in this cube");
  }
  size_t s = static_cast<size_t>(set_it - ctx_.sets.begin());
  std::optional<std::vector<uint64_t>> key = cc_.codec.EncodeKey(coords, set);
  char* block = key ? stores_[s].Find(key->data()) : nullptr;
  if (block == nullptr) {
    return Status::NotFound("empty cube cell");
  }
  return ctx_.aggs[agg]->FinalChecked(cc_.StateOf(block, agg));
}

Result<double> MaterializedCube::PercentOfTotal(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  DATACUBE_ASSIGN_OR_RETURN(Value v, ValueAt(aggregate_output_name, coords));
  DATACUBE_ASSIGN_OR_RETURN(
      Value total, ValueAt(aggregate_output_name,
                           std::vector<Value>(ctx_.num_keys, Value::All())));
  if (!v.is_numeric() || !total.is_numeric() || total.AsDouble() == 0.0) {
    return Status::InvalidArgument("percent-of-total requires numeric values");
  }
  return v.AsDouble() / total.AsDouble();
}

Result<double> MaterializedCube::Index(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("Index: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  std::vector<size_t> fixed;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (!coords[k].is_all()) fixed.push_back(k);
  }
  if (fixed.size() != 2) {
    return Status::InvalidArgument(
        "Index requires exactly two non-ALL coordinates");
  }
  std::vector<Value> all_coords(ctx_.num_keys, Value::All());
  std::vector<Value> row_coords = all_coords;
  row_coords[fixed[0]] = coords[fixed[0]];
  std::vector<Value> col_coords = all_coords;
  col_coords[fixed[1]] = coords[fixed[1]];

  DATACUBE_ASSIGN_OR_RETURN(Value cell, ValueAt(aggregate_output_name, coords));
  DATACUBE_ASSIGN_OR_RETURN(Value grand,
                            ValueAt(aggregate_output_name, all_coords));
  DATACUBE_ASSIGN_OR_RETURN(Value row,
                            ValueAt(aggregate_output_name, row_coords));
  DATACUBE_ASSIGN_OR_RETURN(Value col,
                            ValueAt(aggregate_output_name, col_coords));
  if (!cell.is_numeric() || !grand.is_numeric() || !row.is_numeric() ||
      !col.is_numeric()) {
    return Status::InvalidArgument("Index requires numeric aggregate values");
  }
  double denom = row.AsDouble() * col.AsDouble();
  if (denom == 0.0) {
    return Status::InvalidArgument("Index undefined: zero marginal");
  }
  return cell.AsDouble() * grand.AsDouble() / denom;
}

namespace {

constexpr const char* kCheckpointMagic = "DATACUBE_CKPT_V1\n";

Result<DataType> DataTypeFromName(const std::string& name) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kFloat64,
                     DataType::kString, DataType::kDate}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::ParseError("checkpoint: unknown data type " + name);
}

}  // namespace

Status MaterializedCube::SaveToFile(const std::string& path) const {
  std::string out = kCheckpointMagic;
  // Base schema.
  EncodeCount(base_->num_columns(), &out);
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    const Field& f = base_->schema().field(c);
    EncodeValue(Value::String(f.name), &out);
    EncodeValue(Value::String(DataTypeName(f.type)), &out);
  }
  // Base rows.
  EncodeCount(base_->num_rows(), &out);
  for (size_t r = 0; r < base_->num_rows(); ++r) {
    for (size_t c = 0; c < base_->num_columns(); ++c) {
      EncodeValue(base_->GetValue(r, c), &out);
    }
  }
  // Tombstones.
  std::string bits(tombstone_.size(), '0');
  for (size_t i = 0; i < tombstone_.size(); ++i) {
    if (tombstone_[i]) bits[i] = '1';
  }
  EncodeBlob(bits, &out);
  // Cells per grouping set. Keys are decoded to Values on the way out, so
  // the checkpoint stays layout-independent (format DATACUBE_CKPT_V1).
  EncodeCount(ctx_.aggs.size(), &out);
  EncodeCount(ctx_.sets.size(), &out);
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    EncodeCount(ctx_.sets[s], &out);
    EncodeCount(stores_[s].size(), &out);
    Status cell_status = Status::OK();
    stores_[s].ForEach([&](const uint64_t* key, char* block) {
      if (!cell_status.ok()) return;
      for (const Value& v : cc_.codec.DecodeKey(key)) EncodeValue(v, &out);
      const CellHeader* header = ColumnarContext::Header(block);
      EncodeValue(Value::Int64(header->count), &out);
      EncodeValue(Value::Int64(static_cast<int64_t>(header->repr_row)), &out);
      EncodeValue(Value::Bool(header->has_repr), &out);
      for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
        std::string blob;
        cell_status =
            ctx_.aggs[a]->SerializeState(cc_.StateOf(block, a), &blob);
        if (!cell_status.ok()) return;
        EncodeBlob(blob, &out);
      }
    });
    DATACUBE_RETURN_IF_ERROR(cell_status);
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << out;
  return file.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::unique_ptr<MaterializedCube>> MaterializedCube::LoadFromFile(
    const CubeSpec& spec, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();
  if (data.rfind(kCheckpointMagic, 0) != 0) {
    return Status::ParseError("not a datacube checkpoint: " + path);
  }
  size_t pos = std::string(kCheckpointMagic).size();

  // Base schema + rows.
  DATACUBE_ASSIGN_OR_RETURN(uint64_t ncols, DecodeCount(data, &pos));
  std::vector<Field> fields;
  for (uint64_t c = 0; c < ncols; ++c) {
    DATACUBE_ASSIGN_OR_RETURN(Value name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(Value type_name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(DataType type,
                              DataTypeFromName(type_name.string_value()));
    fields.push_back(Field{name.string_value(), type});
  }
  Table base{Schema{std::move(fields)}};
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nrows, DecodeCount(data, &pos));
  base.Reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(base.AppendRow(row));
  }
  DATACUBE_ASSIGN_OR_RETURN(std::string bits, DecodeBlob(data, &pos));
  if (bits.size() != nrows) {
    return Status::ParseError("checkpoint: tombstone bitmap size mismatch");
  }

  // Rebuild the evaluation context from the caller's spec.
  auto cube = std::unique_ptr<MaterializedCube>(new MaterializedCube());
  cube->base_ = std::make_unique<Table>(std::move(base));
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));
  DATACUBE_ASSIGN_OR_RETURN(cube->cc_,
                            cube_internal::BuildColumnarContext(cube->ctx_));

  DATACUBE_ASSIGN_OR_RETURN(uint64_t naggs, DecodeCount(data, &pos));
  if (naggs != cube->ctx_.aggs.size()) {
    return Status::InvalidArgument(
        "checkpoint aggregate count does not match the supplied spec");
  }
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nsets, DecodeCount(data, &pos));
  if (nsets != cube->ctx_.sets.size()) {
    return Status::InvalidArgument(
        "checkpoint grouping sets do not match the supplied spec");
  }
  // Re-encodes a checkpointed Value key under the current codec, growing
  // the dictionaries for any key value no longer present in the base data.
  auto encode_key = [&cube](const std::vector<Value>& key, GroupingSet set) {
    std::optional<std::vector<uint64_t>> packed =
        cube->cc_.codec.EncodeKey(key, set);
    if (!packed) {
      for (size_t k = 0; k < cube->ctx_.num_keys; ++k) {
        if (IsGrouped(set, k)) cube->cc_.codec.CodeOfOrAdd(k, key[k]);
      }
      if (cube->cc_.codec.needs_relayout()) cube->RelayoutAndRekey();
      packed = cube->cc_.codec.EncodeKey(key, set);
    }
    return std::move(*packed);
  };
  for (uint64_t s = 0; s < nsets; ++s) {
    DATACUBE_ASSIGN_OR_RETURN(uint64_t mask, DecodeCount(data, &pos));
    if (mask != cube->ctx_.sets[s]) {
      return Status::InvalidArgument(
          "checkpoint grouping sets do not match the supplied spec");
    }
    DATACUBE_ASSIGN_OR_RETURN(uint64_t ncells, DecodeCount(data, &pos));
    CellStore store = cube->cc_.MakeStore();
    cube->stores_.push_back(std::move(store));
    for (uint64_t i = 0; i < ncells; ++i) {
      std::vector<Value> key;
      key.reserve(cube->ctx_.num_keys);
      for (size_t k = 0; k < cube->ctx_.num_keys; ++k) {
        DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
        key.push_back(std::move(v));
      }
      DATACUBE_ASSIGN_OR_RETURN(Value count, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value repr, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value has_repr, DecodeValue(data, &pos));
      std::vector<uint64_t> packed = encode_key(key, cube->ctx_.sets[s]);
      char* block = cube->stores_[s].FindOrInsert(packed.data());
      CellHeader* header = ColumnarContext::Header(block);
      header->count = count.int64_value();
      header->repr_row = static_cast<size_t>(repr.int64_value());
      header->has_repr = has_repr.bool_value();
      for (size_t a = 0; a < cube->ctx_.aggs.size(); ++a) {
        DATACUBE_ASSIGN_OR_RETURN(std::string blob, DecodeBlob(data, &pos));
        size_t blob_pos = 0;
        // FindOrInsert initialized the slot; replace it with the
        // checkpointed scratchpad.
        const AggregateFunction& fn = *cube->ctx_.aggs[a];
        char* slot = block + cube->cc_.layout.slots[a].offset;
        fn.DestroyAt(slot);
        DATACUBE_RETURN_IF_ERROR(fn.DeserializeAt(blob, &blob_pos, slot));
      }
    }
  }

  cube->tombstone_.assign(nrows, false);
  for (size_t i = 0; i < nrows; ++i) cube->tombstone_[i] = bits[i] == '1';
  cube->live_rows_ = 0;
  for (size_t r = 0; r < nrows; ++r) {
    if (cube->tombstone_[r]) continue;
    ++cube->live_rows_;
    cube->row_index_.emplace(cube->base_->GetRow(r), r);
  }
  return cube;
}

Result<Table> MaterializedCube::QuerySet(GroupingSet target) {
  std::vector<SliceCoord> coords;
  coords.reserve(ctx_.num_keys);
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    coords.push_back(IsGrouped(target, k) ? SliceCoord::Wildcard()
                                          : SliceCoord::AllPlane());
  }
  return Slice(coords);
}

void MaterializedCube::ForEachCell(
    size_t set_index,
    const std::function<void(const std::vector<Value>& key,
                             const char* block)>& fn) const {
  const cube_internal::CellStore& store = stores_[set_index];
  store.ForEach([&](const uint64_t* key, char* block) {
    fn(cc_.codec.DecodeKey(key), block);
  });
}

Result<Table> MaterializedCube::LiveRows() const {
  Table out{base_->schema()};
  out.Reserve(live_rows_);
  for (size_t r = 0; r < base_->num_rows(); ++r) {
    if (tombstone_[r]) continue;
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(base_->GetRow(r)));
  }
  return out;
}

Result<Table> MaterializedCube::ToTable() const {
  // AssembleColumnarResult mutates its stores (the empty-grand-total
  // fix-up), so assemble from a deep copy of the cells.
  SetStores copy;
  copy.reserve(stores_.size());
  for (size_t s = 0; s < stores_.size(); ++s) {
    CellStore clone = cc_.MakeStore();
    stores_[s].ForEach([&](const uint64_t* key, char* block) {
      clone.InsertClone(key, block);
    });
    copy.push_back(std::move(clone));
  }
  CubeStats stats;
  return cube_internal::AssembleColumnarResult(cc_, copy, &stats);
}

}  // namespace datacube
