#include "datacube/cube/materialized_cube.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "datacube/common/codec.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"

namespace datacube {

using cube_internal::Cell;
using cube_internal::CellMap;
using cube_internal::CubeContext;
using cube_internal::SetMaps;

namespace {

// Mirrors one maintenance operation's MaintenanceStats delta into the global
// registry (the cumulative datacube_maintenance_* counters) on scope exit,
// including early error returns. The per-instance struct stays the exact
// per-cube view; the registry aggregates across all cubes in the process.
class ScopedMaintenancePublish {
 public:
  explicit ScopedMaintenancePublish(const MaintenanceStats* stats)
      : stats_(stats), before_(*stats) {}
  ScopedMaintenancePublish(const ScopedMaintenancePublish&) = delete;
  ScopedMaintenancePublish& operator=(const ScopedMaintenancePublish&) = delete;
  ~ScopedMaintenancePublish() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto inc = [&reg](const char* name, const char* help, uint64_t delta) {
      if (delta != 0) reg.GetCounter(name, help).Inc(delta);
    };
    inc("datacube_maintenance_inserts_total",
        "Base rows folded into maintained cubes", stats_->inserts - before_.inserts);
    inc("datacube_maintenance_deletes_total",
        "Base rows removed from maintained cubes", stats_->deletes - before_.deletes);
    inc("datacube_maintenance_cells_updated_total",
        "Cube cells updated in place by maintenance",
        stats_->cells_updated - before_.cells_updated);
    inc("datacube_maintenance_cells_skipped_total",
        "Cube cells skipped by the maintenance short-circuit",
        stats_->cells_skipped - before_.cells_skipped);
    inc("datacube_maintenance_cells_recomputed_total",
        "Cube cells recomputed from base data (delete-holistic path)",
        stats_->cells_recomputed - before_.cells_recomputed);
    inc("datacube_maintenance_recompute_rows_scanned_total",
        "Base rows re-scanned during maintenance recomputes",
        stats_->recompute_rows_scanned - before_.recompute_rows_scanned);
  }

 private:
  const MaintenanceStats* stats_;
  MaintenanceStats before_;
};

}  // namespace

Result<std::unique_ptr<MaterializedCube>> MaterializedCube::Build(
    const Table& input, const CubeSpec& spec, const CubeOptions& options) {
  auto cube = std::unique_ptr<MaterializedCube>(new MaterializedCube());
  cube->base_ = std::make_unique<Table>(input);
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));

  CubeStats build_stats;
  Result<SetMaps> maps = [&]() -> Result<SetMaps> {
    switch (options.algorithm) {
      case CubeAlgorithm::kNaive2N:
        return cube_internal::ComputeNaive2N(cube->ctx_, &build_stats);
      case CubeAlgorithm::kUnionGroupBy:
        return cube_internal::ComputeUnionGroupBy(cube->ctx_, &build_stats);
      case CubeAlgorithm::kArrayCube:
        return cube_internal::ComputeArrayCube(cube->ctx_, options,
                                               &build_stats);
      case CubeAlgorithm::kSortRollup:
        return cube_internal::ComputeSortRollup(cube->ctx_, &build_stats);
      case CubeAlgorithm::kAuto:
      case CubeAlgorithm::kFromCore:
      default:
        return cube_internal::ComputeFromCore(cube->ctx_, &build_stats);
    }
  }();
  if (!maps.ok()) return maps.status();
  cube->maps_ = std::move(maps).value();

  cube->tombstone_.assign(input.num_rows(), false);
  cube->live_rows_ = input.num_rows();
  for (size_t r = 0; r < input.num_rows(); ++r) {
    cube->row_index_.emplace(input.GetRow(r), r);
  }
  return cube;
}

Status MaterializedCube::EvaluateRow(size_t row) {
  std::vector<GroupExpr> group_exprs = spec_->AllGroupExprs();
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    DATACUBE_ASSIGN_OR_RETURN(Value v,
                              group_exprs[k].expr->Evaluate(*base_, row));
    ctx_.key_columns[k].push_back(std::move(v));
  }
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    const AggregateSpec& agg = spec_->aggregates[a];
    for (size_t i = 0; i < agg.args.size(); ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, agg.args[i]->Evaluate(*base_, row));
      ctx_.agg_args[a][i].push_back(std::move(v));
    }
  }
  return Status::OK();
}

Status MaterializedCube::ApplyInsert(const std::vector<Value>& row) {
  ScopedMaintenancePublish publish(&stats_);
  obs::ScopedSpan span("maintain_insert");
  DATACUBE_RETURN_IF_ERROR(base_->AppendRow(row));
  size_t row_id = base_->num_rows() - 1;
  DATACUBE_RETURN_IF_ERROR(EvaluateRow(row_id));
  tombstone_.push_back(false);
  ++live_rows_;
  row_index_.emplace(row, row_id);
  ++stats_.inserts;

  // Visit the row's cell in each grouping set — 2^N scratchpad visits —
  // finest set first, so the paper's short-circuit applies: once the value
  // "loses" at some set, every subset of that set is skipped.
  Value argv[8];
  std::vector<GroupingSet> lost_at;
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    GroupingSet set = ctx_.sets[s];
    bool dominated = std::any_of(
        lost_at.begin(), lost_at.end(),
        [set](GroupingSet loser) { return (set & loser) == set; });
    if (dominated) {
      ++stats_.cells_skipped;
      continue;
    }
    std::vector<Value> key = ctx_.MaskedKey(row_id, set);
    auto [it, inserted] = maps_[s].try_emplace(key);
    if (inserted) it->second = ctx_.NewCell();
    Cell& cell = it->second;

    // A cell can be skipped outright only when no aggregate can change.
    bool any_change = inserted;
    for (size_t a = 0; a < ctx_.aggs.size() && !any_change; ++a) {
      const auto& arg_columns = ctx_.agg_args[a];
      for (size_t i = 0; i < arg_columns.size(); ++i) {
        argv[i] = arg_columns[i][row_id];
      }
      any_change = ctx_.aggs[a]->InsertMightChange(
          cell.states[a].get(), argv, arg_columns.size());
    }
    if (!any_change) {
      // The row still belongs to the group even though no scratchpad needs
      // an update; keep the membership count exact for cell eviction.
      ++cell.count;
      lost_at.push_back(set);
      ++stats_.cells_skipped;
      continue;
    }
    ctx_.IterRow(&cell, row_id, nullptr);
    ++stats_.cells_updated;
    if (listener_) {
      listener_(CellChange{set, std::move(key),
                           inserted ? CellChange::Op::kCreated
                                    : CellChange::Op::kUpdated});
    }
  }
  return Status::OK();
}

Status MaterializedCube::RecomputeAggregate(size_t set_index,
                                            const std::vector<Value>& key,
                                            size_t agg) {
  obs::ScopedSpan span("recompute_aggregate");
  auto it = maps_[set_index].find(key);
  if (it == maps_[set_index].end()) {
    return Status::Internal("recompute target cell missing");
  }
  GroupingSet set = ctx_.sets[set_index];
  if (span.active()) {
    span.Attr("set", GroupingSetToString(set, ctx_.key_names));
  }
  AggStatePtr fresh = ctx_.aggs[agg]->Init();
  Value argv[8];
  const auto& arg_columns = ctx_.agg_args[agg];
  for (size_t row = 0; row < base_->num_rows(); ++row) {
    if (tombstone_[row]) continue;
    // Does this live row fall in the cell?
    bool match = true;
    for (size_t k = 0; k < ctx_.num_keys && match; ++k) {
      if (IsGrouped(set, k)) match = ctx_.key_columns[k][row] == key[k];
    }
    if (!match) continue;
    for (size_t i = 0; i < arg_columns.size(); ++i) {
      argv[i] = arg_columns[i][row];
    }
    ctx_.aggs[agg]->Iter(fresh.get(), argv, arg_columns.size());
    ++stats_.recompute_rows_scanned;
  }
  it->second.states[agg] = std::move(fresh);
  ++stats_.cells_recomputed;
  return Status::OK();
}

Status MaterializedCube::ApplyDelete(const std::vector<Value>& row) {
  ScopedMaintenancePublish publish(&stats_);
  obs::ScopedSpan span("maintain_delete");
  // Find a live base row with these values.
  auto range = row_index_.equal_range(row);
  size_t row_id = base_->num_rows();
  for (auto it = range.first; it != range.second; ++it) {
    if (!tombstone_[it->second]) {
      row_id = it->second;
      row_index_.erase(it);
      break;
    }
  }
  if (row_id == base_->num_rows()) {
    return Status::NotFound("ApplyDelete: no matching live base row");
  }
  tombstone_[row_id] = true;
  --live_rows_;
  ++stats_.deletes;

  Value argv[8];
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    GroupingSet set = ctx_.sets[s];
    std::vector<Value> key = ctx_.MaskedKey(row_id, set);
    auto it = maps_[s].find(key);
    if (it == maps_[s].end()) {
      return Status::Internal("delete touches a missing cube cell");
    }
    Cell& cell = it->second;
    if (--cell.count == 0) {
      // The group emptied: drop the cell, as a recomputed cube would.
      maps_[s].erase(it);
      ++stats_.cells_updated;
      if (listener_) {
        listener_(CellChange{set, std::move(key), CellChange::Op::kErased});
      }
      continue;
    }
    bool updated = false;
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      const AggregateFunction& fn = *ctx_.aggs[a];
      const auto& arg_columns = ctx_.agg_args[a];
      for (size_t i = 0; i < arg_columns.size(); ++i) {
        argv[i] = arg_columns[i][row_id];
      }
      if (fn.delete_class() == DeleteClass::kDeletable) {
        DATACUBE_RETURN_IF_ERROR(
            fn.Remove(cell.states[a].get(), argv, arg_columns.size()));
        updated = true;
      } else if (fn.RemoveMightChange(cell.states[a].get(), argv,
                                      arg_columns.size())) {
        // Delete-holistic (MIN/MAX losing its incumbent): recompute from
        // base data — the paper's expensive path.
        DATACUBE_RETURN_IF_ERROR(RecomputeAggregate(s, key, a));
        updated = true;
      } else {
        ++stats_.cells_skipped;
      }
    }
    if (updated) {
      ++stats_.cells_updated;
      if (listener_) {
        listener_(CellChange{set, std::move(key), CellChange::Op::kUpdated});
      }
    }
  }
  return Status::OK();
}

Status MaterializedCube::ApplyUpdate(const std::vector<Value>& old_row,
                                     const std::vector<Value>& new_row) {
  // Section 6: "update is just delete plus insert". Validate the delete
  // first so a failed update leaves the cube untouched.
  bool exists = false;
  auto range = row_index_.equal_range(old_row);
  for (auto it = range.first; it != range.second; ++it) {
    if (!tombstone_[it->second]) exists = true;
  }
  if (!exists) {
    return Status::NotFound("ApplyUpdate: old row not present");
  }
  DATACUBE_RETURN_IF_ERROR(ApplyDelete(old_row));
  return ApplyInsert(new_row);
}

Result<Table> MaterializedCube::DrillDown(const std::vector<Value>& coords,
                                          size_t dimension) const {
  if (coords.size() != ctx_.num_keys || dimension >= ctx_.num_keys) {
    return Status::InvalidArgument("DrillDown: bad coordinates");
  }
  if (!coords[dimension].is_all()) {
    return Status::InvalidArgument(
        "DrillDown: the drilled dimension must currently be ALL");
  }
  std::vector<SliceCoord> slice;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (k == dimension) {
      slice.push_back(SliceCoord::Wildcard());
    } else if (coords[k].is_all()) {
      slice.push_back(SliceCoord::AllPlane());
    } else {
      slice.push_back(SliceCoord::Fixed(coords[k]));
    }
  }
  return Slice(slice);
}

Result<Table> MaterializedCube::RollUp(const std::vector<Value>& coords,
                                       size_t dimension) const {
  if (coords.size() != ctx_.num_keys || dimension >= ctx_.num_keys) {
    return Status::InvalidArgument("RollUp: bad coordinates");
  }
  if (coords[dimension].is_all()) {
    return Status::InvalidArgument(
        "RollUp: the rolled dimension is already ALL");
  }
  std::vector<SliceCoord> slice;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (k == dimension || coords[k].is_all()) {
      slice.push_back(SliceCoord::AllPlane());
    } else {
      slice.push_back(SliceCoord::Fixed(coords[k]));
    }
  }
  return Slice(slice);
}

Result<Table> MaterializedCube::Slice(
    const std::vector<SliceCoord>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("Slice: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  // The requested grouping set: concrete wherever the slice fixes or
  // enumerates a dimension; ALL where it asks for the super-aggregate plane.
  GroupingSet set = 0;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (coords[k].kind != SliceCoord::Kind::kAllPlane) set |= (1ULL << k);
  }
  auto set_it = std::find(ctx_.sets.begin(), ctx_.sets.end(), set);
  if (set_it == ctx_.sets.end()) {
    return Status::NotFound("grouping set not materialized in this cube");
  }
  size_t s = static_cast<size_t>(set_it - ctx_.sets.begin());

  std::vector<Field> fields;
  for (size_t k = 0; k < ctx_.num_keys; ++k) {
    fields.push_back(Field{ctx_.key_names[k], ctx_.key_types[k],
                           /*nullable=*/true, /*allow_all=*/true});
  }
  for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    fields.push_back(Field{std::move(name), ctx_.agg_result_types[a],
                           /*nullable=*/true, /*allow_all=*/false});
  }
  Table out{Schema{std::move(fields)}};
  for (const auto& [key, cell] : maps_[s]) {
    bool match = true;
    for (size_t k = 0; k < coords.size() && match; ++k) {
      if (coords[k].kind == SliceCoord::Kind::kFixed) {
        match = key[k] == coords[k].value;
      }
    }
    if (!match) continue;
    std::vector<Value> row = key;
    for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
      DATACUBE_ASSIGN_OR_RETURN(Value v,
                                ctx_.aggs[a]->FinalChecked(cell.states[a].get()));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Value> MaterializedCube::ValueAt(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("ValueAt: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  size_t agg = ctx_.aggs.size();
  for (size_t a = 0; a < spec_->aggregates.size(); ++a) {
    std::string name = spec_->aggregates[a].output_name.empty()
                           ? spec_->aggregates[a].function
                           : spec_->aggregates[a].output_name;
    if (name == aggregate_output_name) {
      agg = a;
      break;
    }
  }
  if (agg == ctx_.aggs.size()) {
    return Status::NotFound("no aggregate named " + aggregate_output_name);
  }
  GroupingSet set = 0;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (!coords[k].is_all()) set |= (1ULL << k);
  }
  auto set_it = std::find(ctx_.sets.begin(), ctx_.sets.end(), set);
  if (set_it == ctx_.sets.end()) {
    return Status::NotFound("grouping set not materialized in this cube");
  }
  size_t s = static_cast<size_t>(set_it - ctx_.sets.begin());
  auto cell_it = maps_[s].find(coords);
  if (cell_it == maps_[s].end()) {
    return Status::NotFound("empty cube cell");
  }
  return ctx_.aggs[agg]->FinalChecked(cell_it->second.states[agg].get());
}

Result<double> MaterializedCube::PercentOfTotal(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  DATACUBE_ASSIGN_OR_RETURN(Value v, ValueAt(aggregate_output_name, coords));
  DATACUBE_ASSIGN_OR_RETURN(
      Value total, ValueAt(aggregate_output_name,
                           std::vector<Value>(ctx_.num_keys, Value::All())));
  if (!v.is_numeric() || !total.is_numeric() || total.AsDouble() == 0.0) {
    return Status::InvalidArgument("percent-of-total requires numeric values");
  }
  return v.AsDouble() / total.AsDouble();
}

Result<double> MaterializedCube::Index(
    const std::string& aggregate_output_name,
    const std::vector<Value>& coords) const {
  if (coords.size() != ctx_.num_keys) {
    return Status::InvalidArgument("Index: expected " +
                                   std::to_string(ctx_.num_keys) +
                                   " coordinates");
  }
  std::vector<size_t> fixed;
  for (size_t k = 0; k < coords.size(); ++k) {
    if (!coords[k].is_all()) fixed.push_back(k);
  }
  if (fixed.size() != 2) {
    return Status::InvalidArgument(
        "Index requires exactly two non-ALL coordinates");
  }
  std::vector<Value> all_coords(ctx_.num_keys, Value::All());
  std::vector<Value> row_coords = all_coords;
  row_coords[fixed[0]] = coords[fixed[0]];
  std::vector<Value> col_coords = all_coords;
  col_coords[fixed[1]] = coords[fixed[1]];

  DATACUBE_ASSIGN_OR_RETURN(Value cell, ValueAt(aggregate_output_name, coords));
  DATACUBE_ASSIGN_OR_RETURN(Value grand,
                            ValueAt(aggregate_output_name, all_coords));
  DATACUBE_ASSIGN_OR_RETURN(Value row,
                            ValueAt(aggregate_output_name, row_coords));
  DATACUBE_ASSIGN_OR_RETURN(Value col,
                            ValueAt(aggregate_output_name, col_coords));
  if (!cell.is_numeric() || !grand.is_numeric() || !row.is_numeric() ||
      !col.is_numeric()) {
    return Status::InvalidArgument("Index requires numeric aggregate values");
  }
  double denom = row.AsDouble() * col.AsDouble();
  if (denom == 0.0) {
    return Status::InvalidArgument("Index undefined: zero marginal");
  }
  return cell.AsDouble() * grand.AsDouble() / denom;
}

namespace {

constexpr const char* kCheckpointMagic = "DATACUBE_CKPT_V1\n";

Result<DataType> DataTypeFromName(const std::string& name) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kFloat64,
                     DataType::kString, DataType::kDate}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::ParseError("checkpoint: unknown data type " + name);
}

}  // namespace

Status MaterializedCube::SaveToFile(const std::string& path) const {
  std::string out = kCheckpointMagic;
  // Base schema.
  EncodeCount(base_->num_columns(), &out);
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    const Field& f = base_->schema().field(c);
    EncodeValue(Value::String(f.name), &out);
    EncodeValue(Value::String(DataTypeName(f.type)), &out);
  }
  // Base rows.
  EncodeCount(base_->num_rows(), &out);
  for (size_t r = 0; r < base_->num_rows(); ++r) {
    for (size_t c = 0; c < base_->num_columns(); ++c) {
      EncodeValue(base_->GetValue(r, c), &out);
    }
  }
  // Tombstones.
  std::string bits(tombstone_.size(), '0');
  for (size_t i = 0; i < tombstone_.size(); ++i) {
    if (tombstone_[i]) bits[i] = '1';
  }
  EncodeBlob(bits, &out);
  // Cells per grouping set.
  EncodeCount(ctx_.aggs.size(), &out);
  EncodeCount(ctx_.sets.size(), &out);
  for (size_t s = 0; s < ctx_.sets.size(); ++s) {
    EncodeCount(ctx_.sets[s], &out);
    EncodeCount(maps_[s].size(), &out);
    for (const auto& [key, cell] : maps_[s]) {
      for (const Value& v : key) EncodeValue(v, &out);
      EncodeValue(Value::Int64(cell.count), &out);
      EncodeValue(Value::Int64(static_cast<int64_t>(cell.repr_row)), &out);
      EncodeValue(Value::Bool(cell.has_repr), &out);
      for (size_t a = 0; a < ctx_.aggs.size(); ++a) {
        std::string blob;
        DATACUBE_RETURN_IF_ERROR(
            ctx_.aggs[a]->SerializeState(cell.states[a].get(), &blob));
        EncodeBlob(blob, &out);
      }
    }
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << out;
  return file.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::unique_ptr<MaterializedCube>> MaterializedCube::LoadFromFile(
    const CubeSpec& spec, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();
  if (data.rfind(kCheckpointMagic, 0) != 0) {
    return Status::ParseError("not a datacube checkpoint: " + path);
  }
  size_t pos = std::string(kCheckpointMagic).size();

  // Base schema + rows.
  DATACUBE_ASSIGN_OR_RETURN(uint64_t ncols, DecodeCount(data, &pos));
  std::vector<Field> fields;
  for (uint64_t c = 0; c < ncols; ++c) {
    DATACUBE_ASSIGN_OR_RETURN(Value name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(Value type_name, DecodeValue(data, &pos));
    DATACUBE_ASSIGN_OR_RETURN(DataType type,
                              DataTypeFromName(type_name.string_value()));
    fields.push_back(Field{name.string_value(), type});
  }
  Table base{Schema{std::move(fields)}};
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nrows, DecodeCount(data, &pos));
  base.Reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(base.AppendRow(row));
  }
  DATACUBE_ASSIGN_OR_RETURN(std::string bits, DecodeBlob(data, &pos));
  if (bits.size() != nrows) {
    return Status::ParseError("checkpoint: tombstone bitmap size mismatch");
  }

  // Rebuild the evaluation context from the caller's spec.
  auto cube = std::unique_ptr<MaterializedCube>(new MaterializedCube());
  cube->base_ = std::make_unique<Table>(std::move(base));
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  DATACUBE_ASSIGN_OR_RETURN(
      cube->ctx_, cube_internal::BuildCubeContext(*cube->base_, *cube->spec_));

  DATACUBE_ASSIGN_OR_RETURN(uint64_t naggs, DecodeCount(data, &pos));
  if (naggs != cube->ctx_.aggs.size()) {
    return Status::InvalidArgument(
        "checkpoint aggregate count does not match the supplied spec");
  }
  DATACUBE_ASSIGN_OR_RETURN(uint64_t nsets, DecodeCount(data, &pos));
  if (nsets != cube->ctx_.sets.size()) {
    return Status::InvalidArgument(
        "checkpoint grouping sets do not match the supplied spec");
  }
  cube->maps_.resize(nsets);
  for (uint64_t s = 0; s < nsets; ++s) {
    DATACUBE_ASSIGN_OR_RETURN(uint64_t mask, DecodeCount(data, &pos));
    if (mask != cube->ctx_.sets[s]) {
      return Status::InvalidArgument(
          "checkpoint grouping sets do not match the supplied spec");
    }
    DATACUBE_ASSIGN_OR_RETURN(uint64_t ncells, DecodeCount(data, &pos));
    for (uint64_t i = 0; i < ncells; ++i) {
      std::vector<Value> key;
      key.reserve(cube->ctx_.num_keys);
      for (size_t k = 0; k < cube->ctx_.num_keys; ++k) {
        DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, &pos));
        key.push_back(std::move(v));
      }
      Cell cell;
      DATACUBE_ASSIGN_OR_RETURN(Value count, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value repr, DecodeValue(data, &pos));
      DATACUBE_ASSIGN_OR_RETURN(Value has_repr, DecodeValue(data, &pos));
      cell.count = count.int64_value();
      cell.repr_row = static_cast<size_t>(repr.int64_value());
      cell.has_repr = has_repr.bool_value();
      for (size_t a = 0; a < cube->ctx_.aggs.size(); ++a) {
        DATACUBE_ASSIGN_OR_RETURN(std::string blob, DecodeBlob(data, &pos));
        size_t blob_pos = 0;
        DATACUBE_ASSIGN_OR_RETURN(
            AggStatePtr state,
            cube->ctx_.aggs[a]->DeserializeState(blob, &blob_pos));
        cell.states.push_back(std::move(state));
      }
      cube->maps_[s].emplace(std::move(key), std::move(cell));
    }
  }

  cube->tombstone_.assign(nrows, false);
  for (size_t i = 0; i < nrows; ++i) cube->tombstone_[i] = bits[i] == '1';
  cube->live_rows_ = 0;
  for (size_t r = 0; r < nrows; ++r) {
    if (cube->tombstone_[r]) continue;
    ++cube->live_rows_;
    cube->row_index_.emplace(cube->base_->GetRow(r), r);
  }
  return cube;
}

Result<Table> MaterializedCube::ToTable() const {
  // AssembleResult mutates only the empty-grand-total fix-up; operate on a
  // const_cast'ed view is unsafe, so copy the map headers (cells are not
  // copied deeply — we rebuild a SetMaps of cloned cells).
  SetMaps copy(maps_.size());
  for (size_t s = 0; s < maps_.size(); ++s) {
    for (const auto& [key, cell] : maps_[s]) {
      copy[s].emplace(key, ctx_.CloneCell(cell));
    }
  }
  CubeStats stats;
  return cube_internal::AssembleResult(ctx_, copy, &stats);
}

}  // namespace datacube
