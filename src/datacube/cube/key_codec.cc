#include "datacube/cube/key_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string_view>

namespace datacube {
namespace cube_internal {

namespace {

uint32_t BitsFor(uint64_t max_code) {
  uint32_t bits = 1;
  while (bits < 64 && (uint64_t{1} << bits) <= max_code) ++bits;
  return bits;
}

// Per-row provisional codes for one grouping column: the reserved
// ALL (0) / NULL (1) codes, and 2 + i for the i-th distinct concrete
// value in first-appearance order. Final codes are assigned after the
// distinct set is sorted, via one remap — so each row costs exactly one
// dictionary hash lookup, in whatever key form is cheapest.
struct ProvisionalColumn {
  std::vector<uint32_t> codes;  // per row
  std::vector<Value> distinct;  // first-appearance order
  bool has_null = false;
  bool has_all = false;
};

// Matches the Value total order's equivalences for doubles: all NaNs are
// one value and -0.0 == +0.0, so canonicalize before keying on bits.
uint64_t CanonicalDoubleBits(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// splitmix64 finalizer — the id map's hash for integral keys. Matches the
// quality bar of the CellStore hash without pulling columnar.h in here.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t IdHash(uint8_t k) { return MixBits(k); }
inline uint64_t IdHash(int64_t k) { return MixBits(static_cast<uint64_t>(k)); }
inline uint64_t IdHash(uint64_t k) { return MixBits(k); }
inline uint64_t IdHash(std::string_view k) {
  return std::hash<std::string_view>{}(k);
}

// Open-addressing key -> first-appearance-id map for the per-row
// dictionary lookups of EncodeTypedColumn. The dictionary build is the
// dominant per-row cost of the columnar context, and node-based
// unordered_map lookups were most of it; a flat power-of-two table with
// linear probing stays resident in L1 for typical key cardinalities.
template <typename Key>
class FlatIdMap {
 public:
  FlatIdMap() { Rehash(64); }

  // Id of `key`, assigning the next id on first appearance (reported via
  // `inserted`).
  uint32_t IdOf(const Key& key, bool* inserted) {
    if ((size_ + 1) * 10 > cap_ * 7) Rehash(cap_ * 2);
    size_t slot = IdHash(key) & (cap_ - 1);
    while (used_[slot]) {
      if (slots_[slot].key == key) {
        *inserted = false;
        return slots_[slot].id;
      }
      slot = (slot + 1) & (cap_ - 1);
    }
    used_[slot] = 1;
    slots_[slot].key = key;
    slots_[slot].id = static_cast<uint32_t>(size_);
    ++size_;
    *inserted = true;
    return slots_[slot].id;
  }

 private:
  struct Slot {
    Key key{};
    uint32_t id = 0;
  };

  void Rehash(size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, Slot{});
    used_.assign(new_cap, 0);
    size_t old_cap = cap_;
    cap_ = new_cap;
    for (size_t i = 0; i < old_cap; ++i) {
      if (!old_used[i]) continue;
      size_t slot = IdHash(old_slots[i].key) & (cap_ - 1);
      while (used_[slot]) slot = (slot + 1) & (cap_ - 1);
      used_[slot] = 1;
      slots_[slot] = old_slots[i];
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> used_;
  size_t cap_ = 0;
  size_t size_ = 0;
};

// Dictionary-encodes a typed column without constructing a Value per row.
// `make_key(r)` produces the hashable key for row r's concrete value;
// `make_value(r)` its Value form (called once per distinct value only).
template <typename Key, typename MakeKey, typename MakeValue>
void EncodeTypedColumn(const datacube::Column& col, size_t num_rows,
                       MakeKey make_key, MakeValue make_value,
                       ProvisionalColumn* out) {
  FlatIdMap<Key> ids;
  const uint8_t* states = col.state_codes();
  out->codes.resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    if (states[r] != 0) {
      if (col.IsNull(r)) {
        out->has_null = true;
        out->codes[r] = static_cast<uint32_t>(KeyCodec::kNullCode);
      } else {
        out->has_all = true;
        out->codes[r] = static_cast<uint32_t>(KeyCodec::kAllCode);
      }
      continue;
    }
    bool inserted;
    uint32_t id = ids.IdOf(make_key(r), &inserted);
    if (inserted) out->distinct.push_back(make_value(r));
    out->codes[r] = 2 + id;
  }
}

void EncodeSource(const KeyColumnSource& source, size_t num_rows,
                  ProvisionalColumn* out) {
  if (source.values != nullptr) {
    const std::vector<Value>& vals = *source.values;
    std::unordered_map<Value, uint32_t, ValueHash> ids;
    out->codes.resize(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const Value& v = vals[r];
      if (v.is_null()) {
        out->has_null = true;
        out->codes[r] = static_cast<uint32_t>(KeyCodec::kNullCode);
        continue;
      }
      if (v.is_all()) {
        out->has_all = true;
        out->codes[r] = static_cast<uint32_t>(KeyCodec::kAllCode);
        continue;
      }
      auto [it, inserted] =
          ids.emplace(v, static_cast<uint32_t>(out->distinct.size()));
      if (inserted) out->distinct.push_back(v);
      out->codes[r] = 2 + it->second;
    }
    return;
  }
  const datacube::Column& col = *source.column;
  switch (col.type()) {
    case DataType::kBool: {
      const auto& data = col.raw<uint8_t>();
      EncodeTypedColumn<uint8_t>(
          col, num_rows, [&](size_t r) { return data[r]; },
          [&](size_t r) { return Value::Bool(data[r] != 0); }, out);
      return;
    }
    case DataType::kInt64: {
      const auto& data = col.raw<int64_t>();
      EncodeTypedColumn<int64_t>(
          col, num_rows, [&](size_t r) { return data[r]; },
          [&](size_t r) { return Value::Int64(data[r]); }, out);
      return;
    }
    case DataType::kFloat64: {
      const auto& data = col.raw<double>();
      EncodeTypedColumn<uint64_t>(
          col, num_rows, [&](size_t r) { return CanonicalDoubleBits(data[r]); },
          [&](size_t r) {
            double v = data[r];
            if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
            if (v == 0.0) v = 0.0;
            return Value::Float64(v);
          },
          out);
      return;
    }
    case DataType::kString: {
      const auto& data = col.raw<std::string>();
      EncodeTypedColumn<std::string_view>(
          col, num_rows,
          [&](size_t r) { return std::string_view(data[r]); },
          [&](size_t r) { return Value::String(data[r]); }, out);
      return;
    }
    case DataType::kDate: {
      const auto& data = col.raw<Date>();
      EncodeTypedColumn<int64_t>(
          col, num_rows,
          [&](size_t r) { return int64_t{data[r].days_since_epoch}; },
          [&](size_t r) { return Value::FromDate(data[r]); }, out);
      return;
    }
  }
}

}  // namespace

KeyCodec KeyCodec::Build(
    const std::vector<std::vector<Value>>& key_columns) {
  std::vector<KeyColumnSource> sources(key_columns.size());
  for (size_t k = 0; k < key_columns.size(); ++k) {
    sources[k].values = &key_columns[k];
  }
  size_t num_rows = key_columns.empty() ? 0 : key_columns[0].size();
  return Build(sources, num_rows, nullptr);
}

KeyCodec KeyCodec::Build(const std::vector<KeyColumnSource>& sources,
                         size_t num_rows,
                         std::vector<std::vector<uint32_t>>* row_codes) {
  KeyCodec codec;
  codec.cols_.resize(sources.size());
  if (row_codes != nullptr) row_codes->resize(sources.size());
  for (size_t k = 0; k < sources.size(); ++k) {
    ProvisionalColumn prov;
    EncodeSource(sources[k], num_rows, &prov);
    Column& col = codec.cols_[k];
    col.has_null = prov.has_null;
    col.has_all = prov.has_all;
    // Sorted dictionary (the PR-3 total order, NaN included) so codes are
    // deterministic for a given input; remap first-appearance ids to
    // their sorted positions.
    std::vector<uint32_t> order(prov.distinct.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return prov.distinct[a].Compare(prov.distinct[b]) < 0;
    });
    std::vector<uint32_t> remap(prov.distinct.size());
    col.values.resize(prov.distinct.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      col.values[rank] = std::move(prov.distinct[order[rank]]);
      remap[order[rank]] = static_cast<uint32_t>(rank) + 2;
    }
    col.codes.reserve(col.values.size());
    for (size_t i = 0; i < col.values.size(); ++i) {
      col.codes.emplace(col.values[i], i + 2);
    }
    if (row_codes != nullptr) {
      std::vector<uint32_t>& rc = (*row_codes)[k];
      rc = std::move(prov.codes);
      for (uint32_t& c : rc) {
        if (c >= 2) c = remap[c - 2];
      }
    }
  }
  codec.ComputeLayout();
  return codec;
}

void KeyCodec::ComputeLayout() {
  size_t word = 0;
  uint32_t used = 0;
  for (Column& col : cols_) {
    col.bits = BitsFor(col.max_code());
    col.field_mask = col.bits >= 64 ? ~uint64_t{0}
                                    : (uint64_t{1} << col.bits) - 1;
    // Greedy packing; fields never straddle a word boundary.
    if (used + col.bits > 64) {
      ++word;
      used = 0;
    }
    col.word = word;
    col.shift = used;
    used += col.bits;
  }
  words_ = word + 1;
}

size_t KeyCodec::total_bits() const {
  size_t bits = 0;
  for (const Column& c : cols_) bits += c.bits;
  return bits;
}

std::vector<size_t> KeyCodec::Cardinalities() const {
  std::vector<size_t> cards;
  cards.reserve(cols_.size());
  for (const Column& c : cols_) {
    size_t n = c.values.size() + (c.has_null ? 1 : 0) + (c.has_all ? 1 : 0);
    cards.push_back(std::max<size_t>(1, n));
  }
  return cards;
}

std::optional<uint64_t> KeyCodec::CodeOf(size_t k, const Value& v) const {
  if (v.is_all()) return kAllCode;
  if (v.is_null()) return kNullCode;
  auto it = cols_[k].codes.find(v);
  if (it == cols_[k].codes.end()) return std::nullopt;
  return it->second;
}

uint64_t KeyCodec::CodeOfOrAdd(size_t k, const Value& v) {
  if (v.is_all()) return kAllCode;
  if (v.is_null()) {
    cols_[k].has_null = true;
    return kNullCode;
  }
  Column& col = cols_[k];
  auto [it, inserted] = col.codes.emplace(v, col.values.size() + 2);
  if (inserted) col.values.push_back(v);
  return it->second;
}

bool KeyCodec::needs_relayout() const {
  for (const Column& c : cols_) {
    if (c.max_code() > c.field_mask) return true;
  }
  return false;
}

void KeyCodec::Relayout() { ComputeLayout(); }

void KeyCodec::EncodeRow(
    const std::vector<std::vector<Value>>& key_columns, size_t row,
    uint64_t* out) {
  for (size_t w = 0; w < words_; ++w) out[w] = 0;
  for (size_t k = 0; k < cols_.size(); ++k) {
    uint64_t code = CodeOfOrAdd(k, key_columns[k][row]);
    out[cols_[k].word] |= code << cols_[k].shift;
  }
}

std::optional<std::vector<uint64_t>> KeyCodec::EncodeKey(
    const std::vector<Value>& key, GroupingSet set) const {
  std::vector<uint64_t> out(words_, 0);
  for (size_t k = 0; k < cols_.size(); ++k) {
    if (!IsGrouped(set, k)) continue;  // field stays kAllCode
    std::optional<uint64_t> code = CodeOf(k, key[k]);
    if (!code.has_value()) return std::nullopt;
    out[cols_[k].word] |= *code << cols_[k].shift;
  }
  return out;
}

std::vector<uint64_t> KeyCodec::MaskForSet(GroupingSet set) const {
  std::vector<uint64_t> masks(words_, 0);
  for (size_t k = 0; k < cols_.size(); ++k) {
    if (!IsGrouped(set, k)) continue;
    masks[cols_[k].word] |= cols_[k].field_mask << cols_[k].shift;
  }
  return masks;
}

Value KeyCodec::ValueAt(const uint64_t* key, size_t k) const {
  uint64_t code = CodeAt(key, k);
  if (code == kAllCode) return Value::All();
  if (code == kNullCode) return Value::Null();
  return cols_[k].values[code - 2];
}

std::vector<Value> KeyCodec::DecodeKey(const uint64_t* key) const {
  std::vector<Value> out;
  out.reserve(cols_.size());
  for (size_t k = 0; k < cols_.size(); ++k) out.push_back(ValueAt(key, k));
  return out;
}

}  // namespace cube_internal
}  // namespace datacube
