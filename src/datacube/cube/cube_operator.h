#ifndef DATACUBE_CUBE_CUBE_OPERATOR_H_
#define DATACUBE_CUBE_CUBE_OPERATOR_H_

#include <string>
#include <vector>

#include "datacube/cube/cube_spec.h"
#include "datacube/table/table.h"

namespace datacube {

/// The cube operator's output: the result relation plus execution
/// instrumentation.
struct CubeResult {
  Table table;
  CubeStats stats;
};

/// Executes the CUBE / ROLLUP / GROUP BY operator described by `spec` over
/// `input` — the paper's
///   SELECT <groups>, <aggs> FROM input
///   GROUP BY <g> ROLLUP <r> CUBE <c>
///
/// The result schema is:
///   [grouping columns] [decorations] [aggregates] [GROUPING(col) columns?]
/// Super-aggregate rows carry the ALL token (or NULL + GROUPING = TRUE in
/// AllMode::kNullWithGrouping) in aggregated-away grouping columns.
Result<CubeResult> ExecuteCube(const Table& input, const CubeSpec& spec,
                               const CubeOptions& options = {});

/// Renders the execution plan the operator would use for `spec` over
/// `input` without computing the cube: the chosen algorithm, each grouping
/// set with its estimated cell count, and — for lattice-cascading
/// strategies — which parent each super-aggregate folds from (the
/// Section 5 smallest-parent order). Useful for understanding and debugging
/// big cubes before paying for them.
Result<std::string> ExplainCube(const Table& input, const CubeSpec& spec,
                                const CubeOptions& options = {});

/// Convenience: plain GROUP BY (the degenerate form of the operator).
Result<CubeResult> GroupBy(const Table& input,
                           std::vector<GroupExpr> group_by,
                           std::vector<AggregateSpec> aggregates,
                           const CubeOptions& options = {});

/// Convenience: full CUBE over the given columns.
Result<CubeResult> Cube(const Table& input, std::vector<GroupExpr> cube,
                        std::vector<AggregateSpec> aggregates,
                        const CubeOptions& options = {});

/// Convenience: ROLLUP over the given columns.
Result<CubeResult> Rollup(const Table& input, std::vector<GroupExpr> rollup,
                          std::vector<AggregateSpec> aggregates,
                          const CubeOptions& options = {});

/// Helper to build a GroupExpr from a plain column name.
GroupExpr GroupCol(const std::string& column);

/// Helper to build a one-argument AggregateSpec, e.g.
/// Agg("sum", "Units", "TotalUnits").
AggregateSpec Agg(const std::string& function, const std::string& column,
                  const std::string& output_name = "");

/// Helper for COUNT(*).
AggregateSpec CountStar(const std::string& output_name = "count");

}  // namespace datacube

#endif  // DATACUBE_CUBE_CUBE_OPERATOR_H_
