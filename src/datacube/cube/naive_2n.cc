#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

// The paper's Section 5 "2^N-algorithm": allocate a handle for each cube
// cell; when a new tuple (x1..xN, v) arrives, call Iter once for each of the
// 2^N matching cells (each coordinate is either x_i or ALL). Works for every
// aggregate class — including holistic functions, for which the paper knows
// "no more efficient way" — at the cost of T × |sets| Iter calls per
// aggregate.
Result<SetMaps> ComputeNaive2N(const CubeContext& ctx, CubeStats* stats) {
  obs::ScopedSpan span("scan_2n");
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(ctx.num_rows()));
    span.Attr("sets", static_cast<uint64_t>(ctx.sets.size()));
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kNaive2N;
  SetMaps maps(ctx.sets.size());
  for (size_t row = 0; row < ctx.num_rows(); ++row) {
    for (size_t s = 0; s < ctx.sets.size(); ++s) {
      std::vector<Value> key = ctx.MaskedKey(row, ctx.sets[s]);
      auto [it, inserted] = maps[s].try_emplace(std::move(key));
      if (inserted) it->second = ctx.NewCell();
      ctx.IterRow(&it->second, row, stats);
    }
  }
  if (stats != nullptr) ++stats->input_scans;
  return maps;
}

}  // namespace cube_internal
}  // namespace datacube
