#include <algorithm>
#include <map>

#include "datacube/cube/cube_internal.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

namespace {

// Per-dimension dictionary: sorted distinct key values → dense codes
// 0..C-1, with code C reserved for ALL. This is Graefe's technique quoted in
// Section 5: "keep a hashed symbol table that maps each string to an integer
// so that ... the aggregates can be stored as an N-dimensional array".
struct Dimension {
  std::vector<Value> values;            // code -> value
  std::map<Value, size_t> codes;        // value -> code
  size_t size_with_all() const { return values.size() + 1; }
  size_t all_code() const { return values.size(); }
};

}  // namespace

// Section 5's dense-array strategy for distributive/algebraic aggregates:
// materialize the core as an N-dimensional array with each dimension of size
// C_i + 1 (the extra slot is ALL), then compute the N-1 dimensional slabs by
// projecting one dimension at a time — always collapsing the dimension with
// the smallest C_i first ("pick the * with the smallest C_i").
//
// Only meaningful for the full cube; other grouping-set shapes, holistic
// aggregates, or an array bigger than options.array_max_cells fall back to
// the from-core strategy.
Result<SetMaps> ComputeArrayCube(const CubeContext& ctx,
                                 const CubeOptions& options, CubeStats* stats) {
  bool is_full_cube =
      ctx.sets.size() == (1ULL << ctx.num_keys) && ctx.num_keys > 0;
  if (!ctx.all_mergeable || !is_full_cube) {
    return ComputeFromCore(ctx, stats);
  }

  // Build dictionaries.
  std::vector<Dimension> dims(ctx.num_keys);
  {
    obs::ScopedSpan span("build_dictionaries");
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      for (const Value& v : ctx.key_columns[k]) dims[k].codes.emplace(v, 0);
      for (auto& [v, code] : dims[k].codes) {
        code = dims[k].values.size();
        dims[k].values.push_back(v);
      }
    }
  }

  // Strides for linearizing coordinates; check the Π(C_i + 1) bound.
  std::vector<size_t> stride(ctx.num_keys);
  size_t total_cells = 1;
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    stride[k] = total_cells;
    size_t dim = dims[k].size_with_all();
    if (dim != 0 && total_cells > options.array_max_cells / dim) {
      return ComputeFromCore(ctx, stats);  // would exceed the dense budget
    }
    total_cells *= dim;
  }
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kArrayCube;
  obs::ScopedSpan span("array_cube");
  if (span.active()) {
    span.Attr("dense_cells", static_cast<uint64_t>(total_cells));
  }

  // The dense array. Cells with empty `states` are untouched (sparse holes).
  std::vector<Cell> array(total_cells);
  auto touch = [&](size_t idx) -> Cell* {
    if (array[idx].states.empty()) array[idx] = ctx.NewCell();
    return &array[idx];
  };

  // Fill the core.
  std::vector<size_t> coord(ctx.num_keys);
  for (size_t row = 0; row < ctx.num_rows(); ++row) {
    size_t idx = 0;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      idx += dims[k].codes.at(ctx.key_columns[k][row]) * stride[k];
    }
    ctx.IterRow(touch(idx), row, stats);
  }
  if (stats != nullptr) ++stats->input_scans;

  // Project one dimension at a time. For each grouping set (finest first),
  // pick the collapsed dimension with the smallest cardinality among those
  // whose single re-introduction yields an already-computed parent — in a
  // full cube that is every cleared bit, so the smallest-C_i rule applies
  // directly.
  GroupingSet full = FullSet(ctx.num_keys);
  for (GroupingSet set : ctx.sets) {
    if (set == full) continue;
    size_t best_d = ctx.num_keys;
    for (size_t d = 0; d < ctx.num_keys; ++d) {
      if (IsGrouped(set, d)) continue;
      if (best_d == ctx.num_keys ||
          dims[d].values.size() < dims[best_d].values.size()) {
        best_d = d;
      }
    }
    GroupingSet parent = set | (1ULL << best_d);
    // Enumerate the parent's cells with an odometer over its grouped dims
    // (ALL in the rest), merging each into the child cell at coord[d]=ALL.
    std::vector<size_t> grouped_dims;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (IsGrouped(parent, k)) grouped_dims.push_back(k);
    }
    std::fill(coord.begin(), coord.end(), 0);
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (!IsGrouped(parent, k)) coord[k] = dims[k].all_code();
    }
    while (true) {
      size_t parent_idx = 0;
      for (size_t k = 0; k < ctx.num_keys; ++k) {
        parent_idx += coord[k] * stride[k];
      }
      if (!array[parent_idx].states.empty()) {
        size_t child_idx =
            parent_idx +
            (dims[best_d].all_code() - coord[best_d]) * stride[best_d];
        DATACUBE_RETURN_IF_ERROR(
            ctx.MergeCell(touch(child_idx), array[parent_idx], stats));
      }
      // Advance the odometer.
      size_t pos = 0;
      for (; pos < grouped_dims.size(); ++pos) {
        size_t k = grouped_dims[pos];
        if (++coord[k] < dims[k].values.size()) break;
        coord[k] = 0;
      }
      if (pos == grouped_dims.size()) break;
    }
  }

  // Export the array into per-set cell maps.
  SetMaps maps(ctx.sets.size());
  for (size_t s = 0; s < ctx.sets.size(); ++s) {
    GroupingSet set = ctx.sets[s];
    std::vector<size_t> grouped_dims;
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (IsGrouped(set, k)) grouped_dims.push_back(k);
    }
    std::fill(coord.begin(), coord.end(), 0);
    for (size_t k = 0; k < ctx.num_keys; ++k) {
      if (!IsGrouped(set, k)) coord[k] = dims[k].all_code();
    }
    while (true) {
      size_t idx = 0;
      for (size_t k = 0; k < ctx.num_keys; ++k) idx += coord[k] * stride[k];
      if (!array[idx].states.empty()) {
        std::vector<Value> key(ctx.num_keys, Value::All());
        for (size_t k : grouped_dims) key[k] = dims[k].values[coord[k]];
        maps[s].emplace(std::move(key), std::move(array[idx]));
        array[idx] = Cell{};  // each cell belongs to exactly one set
      }
      size_t pos = 0;
      for (; pos < grouped_dims.size(); ++pos) {
        size_t k = grouped_dims[pos];
        if (++coord[k] < dims[k].values.size()) break;
        coord[k] = 0;
      }
      if (pos == grouped_dims.size()) break;
    }
  }
  return maps;
}

}  // namespace cube_internal
}  // namespace datacube
