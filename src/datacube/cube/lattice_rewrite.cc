#include "datacube/cube/lattice_rewrite.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "datacube/cube/grouping_set.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

bool LatticeRewriteEligible(const CubeContext& ctx) {
  if (!ctx.all_mergeable || ctx.full_set_index < 0) return false;
  if (ctx.num_keys > 16) return false;
  for (const AggregateFunctionPtr& agg : ctx.aggs) {
    // Holistic functions are excluded even when they happen to support
    // Merge (count_distinct, mode): their super-aggregate cost is not
    // bounded by the sub-aggregate sizes the cost model reasons about, and
    // the paper's contract is that holistic cubes come from base data.
    if (agg->agg_class() == AggClass::kHolistic) return false;
  }
  return true;
}

size_t ResolveMaterializeBudget(const CubeOptions& options) {
  if (options.materialize_budget_bytes > 0) {
    return options.materialize_budget_bytes;
  }
  const char* env = std::getenv("DATACUBE_MATERIALIZE_BUDGET");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return 0;  // not a number: ignore, no budget
  return static_cast<size_t>(v);
}

Result<LatticeRewritePlan> PlanLatticeRewrite(const CubeContext& ctx,
                                              const ColumnarContext& cc,
                                              size_t budget_bytes) {
  LatticeRewritePlan plan;
  plan.budget_bytes = budget_bytes;
  plan.model.num_dims = ctx.num_keys;
  plan.model.cardinalities = cc.codec.Cardinalities();
  plan.model.base_rows = ctx.num_rows();
  plan.model.bytes_per_cell = static_cast<double>(
      cc.words * sizeof(uint64_t) + cc.layout.block_size);
  plan.model.candidates = ctx.sets;
  DATACUBE_ASSIGN_OR_RETURN(
      plan.selection, SelectViewsByByteBudget(
                          plan.model, static_cast<double>(budget_bytes)));
  // The selection comes back in greedy-pick order, but the columnar
  // algorithms require canonical NormalizeSets order: PlanLattice node i
  // corresponds to ctx.sets[i], and cascades fold each set from a parent
  // that appears earlier. Re-sort the selection (views and the parallel
  // per-view arrays) before it is swapped into ctx.sets; the core keeps
  // slot 0, having the maximal popcount.
  {
    std::vector<size_t> order(plan.selection.views.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      GroupingSet x = plan.selection.views[a], y = plan.selection.views[b];
      int px = PopCount(x), py = PopCount(y);
      if (px != py) return px > py;
      return x > y;
    });
    ViewSelection canonical = plan.selection;
    for (size_t i = 0; i < order.size(); ++i) {
      canonical.views[i] = plan.selection.views[order[i]];
      canonical.benefits[i] = plan.selection.benefits[order[i]];
      canonical.view_bytes[i] = plan.selection.view_bytes[order[i]];
    }
    plan.selection = std::move(canonical);
  }
  plan.planned_source.reserve(ctx.sets.size());
  for (GroupingSet target : ctx.sets) {
    bool materialized =
        std::find(plan.selection.views.begin(), plan.selection.views.end(),
                  target) != plan.selection.views.end();
    plan.planned_source.push_back(
        materialized ? target
                     : CheapestAncestor(plan.selection, target,
                                        plan.model.cardinalities,
                                        plan.model.base_rows));
  }
  return plan;
}

Result<SetStores> FoldSelectedToRequested(
    const ColumnarContext& cc, const LatticeRewritePlan& plan,
    const std::vector<GroupingSet>& requested, SetStores selected_stores,
    CubeStats* stats) {
  const std::vector<GroupingSet>& views = plan.selection.views;

  stats->lattice_budget_bytes = plan.budget_bytes;
  stats->lattice_views_materialized = views.size();
  // Actual bytes resident in the kept views. Always <= the estimate the
  // selection admitted (actual cells <= min(Π C_k, rows) = estimated
  // cells), so a selection within budget stays within budget here.
  double resident = 0;
  for (const CellStore& store : selected_stores) {
    resident += static_cast<double>(store.size()) * plan.model.bytes_per_cell;
  }
  stats->lattice_bytes_materialized = static_cast<uint64_t>(resident);

  if (stats->per_set.size() < requested.size()) {
    stats->per_set.resize(requested.size());
  }

  SetStores out(requested.size());
  std::vector<uint64_t> key(cc.words);

  // Pass 1: fold every non-materialized set while all selected stores are
  // still present (a materialized set may itself be the fold source of a
  // coarser one requested earlier in `requested`).
  for (size_t i = 0; i < requested.size(); ++i) {
    GroupingSet target = requested[i];
    GroupingSetExecStats& ps = stats->per_set[i];
    ps.set = target;
    if (std::find(views.begin(), views.end(), target) != views.end()) {
      ps.materialized = true;  // store adopted in pass 2
      continue;
    }
    // Cheapest usable ancestor by actual materialized cell count.
    size_t best = views.size();
    for (size_t j = 0; j < views.size(); ++j) {
      if ((views[j] & target) != target) continue;
      if (best == views.size() ||
          selected_stores[j].size() < selected_stores[best].size()) {
        best = j;
      }
    }
    if (best == views.size()) {
      // No materialized superset — unreachable when the core was selected;
      // recompute from base data rather than fail.
      out[i] = FlatGroupBy(cc, target, stats);
      ++stats->lattice_base_fallbacks;
      continue;
    }
    const CellStore& parent = selected_stores[best];
    obs::ScopedSpan fold_span("ancestor_fold");
    std::vector<uint64_t> mask = cc.codec.MaskForSet(target);
    CellStore folded = cc.MakeStore();
    Status merge_status = Status::OK();
    parent.ForEach([&](const uint64_t* pkey, char* pblock) {
      for (size_t w = 0; w < mask.size(); ++w) key[w] = pkey[w] & mask[w];
      Status st = cc.MergeCell(folded.FindOrInsert(key.data()), pblock, stats);
      if (!st.ok() && merge_status.ok()) merge_status = st;
    });
    DATACUBE_RETURN_IF_ERROR(merge_status);
    ps.answered_from = static_cast<int64_t>(views[best]);
    ++stats->lattice_ancestor_folds;
    stats->lattice_fold_cells += parent.size();
    if (fold_span.active()) {
      fold_span.Attr("set", GroupingSetToString(target, cc.ctx->key_names));
      fold_span.Attr("from",
                     GroupingSetToString(views[best], cc.ctx->key_names));
      fold_span.Attr("cells_absorbed", static_cast<uint64_t>(parent.size()));
      fold_span.Attr("cells", static_cast<uint64_t>(folded.size()));
    }
    out[i] = std::move(folded);
  }

  // Pass 2: adopt directly-materialized stores into their request slots.
  for (size_t j = 0; j < views.size(); ++j) {
    auto it = std::find(requested.begin(), requested.end(), views[j]);
    if (it == requested.end()) continue;  // selection ⊆ requested, always hit
    out[static_cast<size_t>(it - requested.begin())] =
        std::move(selected_stores[j]);
  }
  return out;
}

}  // namespace cube_internal
}  // namespace datacube
