#include "datacube/cube/partitioned_cube.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"

namespace datacube {

namespace {

using cube_internal::BuildColumnarContext;
using cube_internal::BuildCubeContext;
using cube_internal::CellStore;
using cube_internal::ColumnarContext;
using cube_internal::CubeContext;
using cube_internal::ParallelStatusFor;
using cube_internal::SetStores;
using cube_internal::TaskGroup;
using cube_internal::ThreadPool;

/// Floor division, so negative partition keys window correctly
/// (e.g. key -1, width 10 → window -1 covering [-10, 0)).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

obs::Counter& PartCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

obs::Gauge& PartGauge(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetGauge(name, help);
}

/// A merge sink: the columnar machinery of a same-spec cube over an EMPTY
/// base table. Partition cells fold in via the cross-cube Merge protocol —
/// the state layout depends only on the aggregate list, so every
/// partition's cell blocks are byte-compatible with the sink's.
/// Heap-allocated and never moved: ctx/cc hold internal pointers.
struct MergeSink {
  Table empty;
  CubeSpec spec;
  CubeContext ctx;
  ColumnarContext cc;
  // Declaration order matters: stores destroy their cells through cc.
  SetStores stores;
};

/// Re-encodes every sink store's keys after dictionary growth forced a
/// codec Relayout (the MaterializedCube::RelayoutAndRekey dance, minus row
/// keys — the sink's base table is empty).
void RekeySinkStores(MergeSink& sink) {
  std::vector<std::vector<std::pair<std::vector<Value>, char*>>> saved(
      sink.stores.size());
  for (size_t s = 0; s < sink.stores.size(); ++s) {
    saved[s].reserve(sink.stores[s].size());
    sink.stores[s].ForEach([&](const uint64_t* key, char* block) {
      saved[s].emplace_back(sink.cc.codec.DecodeKey(key), block);
    });
  }
  sink.cc.codec.Relayout();
  sink.cc.RepackRowKeys();
  for (size_t s = 0; s < sink.stores.size(); ++s) {
    CellStore fresh = sink.cc.MakeStore(sink.stores[s].arena());
    fresh.MutableStats() = sink.stores[s].stats();
    sink.stores[s].ReleaseAll();
    for (auto& [key, block] : saved[s]) {
      std::optional<std::vector<uint64_t>> packed =
          sink.cc.codec.EncodeKey(key, sink.ctx.sets[s]);
      fresh.InsertAdopt(packed->data(), block);
    }
    sink.stores[s] = std::move(fresh);
  }
}

/// Deep-copies the spec's expression trees. Expr::Bind caches column
/// indexes inside the nodes, so sinks and deltas built concurrently from
/// one shared spec must each bind a private copy — a clone shares no
/// nodes, making concurrent ingest / merged reads / compaction rebuilds
/// race-free without a lock.
CubeSpec CloneSpecExprs(const CubeSpec& spec) {
  CubeSpec out = spec;
  auto clone_groups = [](std::vector<GroupExpr>& gs) {
    for (GroupExpr& g : gs) {
      if (g.expr != nullptr) g.expr = g.expr->Clone();
    }
  };
  clone_groups(out.group_by);
  clone_groups(out.rollup);
  clone_groups(out.cube);
  for (AggregateSpec& a : out.aggregates) {
    for (ExprPtr& arg : a.args) {
      if (arg != nullptr) arg = arg->Clone();
    }
  }
  for (Decoration& d : out.decorations) {
    if (d.expr != nullptr) d.expr = d.expr->Clone();
  }
  return out;
}

Result<std::unique_ptr<MergeSink>> MakeSink(
    const Schema& schema, const CubeSpec& spec,
    const std::optional<GroupingSet>& only) {
  auto sink = std::make_unique<MergeSink>();
  sink->empty = Table(schema);
  sink->spec = CloneSpecExprs(spec);
  if (only.has_value()) {
    sink->spec.explicit_sets = std::vector<GroupingSet>{*only};
  }
  DATACUBE_ASSIGN_OR_RETURN(sink->ctx,
                            BuildCubeContext(sink->empty, sink->spec));
  DATACUBE_ASSIGN_OR_RETURN(sink->cc, BuildColumnarContext(sink->ctx));
  sink->stores.reserve(sink->ctx.sets.size());
  for (size_t s = 0; s < sink->ctx.sets.size(); ++s) {
    sink->stores.push_back(sink->cc.MakeStore());
  }
  return sink;
}

/// Folds every cell of `src` into the sink: decode the key under src's
/// codec, re-encode under the sink's (growing its dictionaries as new
/// values arrive), and Merge the state blocks.
Status FoldCube(MergeSink& sink, const MaterializedCube& src) {
  const std::vector<GroupingSet>& src_sets = src.grouping_sets();
  for (size_t s = 0; s < sink.ctx.sets.size(); ++s) {
    GroupingSet set = sink.ctx.sets[s];
    auto it = std::find(src_sets.begin(), src_sets.end(), set);
    if (it == src_sets.end()) {
      return Status::Internal("partition delta is missing a grouping set");
    }
    size_t src_idx = static_cast<size_t>(it - src_sets.begin());
    Status st = Status::OK();
    src.ForEachCell(
        src_idx, [&](const std::vector<Value>& key, const char* block) {
          if (!st.ok()) return;
          std::optional<std::vector<uint64_t>> packed =
              sink.cc.codec.EncodeKey(key, set);
          if (!packed.has_value()) {
            for (size_t k = 0; k < sink.ctx.num_keys; ++k) {
              if (IsGrouped(set, k)) sink.cc.codec.CodeOfOrAdd(k, key[k]);
            }
            if (sink.cc.codec.needs_relayout()) RekeySinkStores(sink);
            packed = sink.cc.codec.EncodeKey(key, set);
          }
          char* dst = sink.stores[s].FindOrInsert(packed->data());
          st = sink.cc.MergeCell(dst, block, nullptr);
        });
    DATACUBE_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

/// FoldCube's sink-to-sink form: folds every cell of a shard sink into
/// `dst`. Both sinks were built from the same spec and `only` restriction,
/// so their grouping-set order is identical by construction. Used by the
/// partition-parallel merged read to combine per-shard results.
Status FoldSink(MergeSink& dst, const MergeSink& src) {
  for (size_t s = 0; s < dst.ctx.sets.size(); ++s) {
    GroupingSet set = dst.ctx.sets[s];
    Status st = Status::OK();
    src.stores[s].ForEach([&](const uint64_t* key, char* block) {
      if (!st.ok()) return;
      std::vector<Value> decoded = src.cc.codec.DecodeKey(key);
      std::optional<std::vector<uint64_t>> packed =
          dst.cc.codec.EncodeKey(decoded, set);
      if (!packed.has_value()) {
        for (size_t k = 0; k < dst.ctx.num_keys; ++k) {
          if (IsGrouped(set, k)) dst.cc.codec.CodeOfOrAdd(k, decoded[k]);
        }
        if (dst.cc.codec.needs_relayout()) RekeySinkStores(dst);
        packed = dst.cc.codec.EncodeKey(decoded, set);
      }
      char* cell = dst.stores[s].FindOrInsert(packed->data());
      st = dst.cc.MergeCell(cell, block, nullptr);
    });
    DATACUBE_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

/// Shards of the partition-parallel merged read. Fixed (never derived from
/// the pool size) so a merged read's result — including the floating-point
/// fold order — is byte-identical no matter how many workers the pool has:
/// delta d folds into shard d % shards, shards fold into the main sink in
/// shard order.
constexpr size_t kMergeReadFanout = 8;

constexpr char kManifestMagic[] = "DATACUBE_PART_V1";

}  // namespace

Result<std::unique_ptr<PartitionedCube>> PartitionedCube::Create(
    const Schema& base_schema, const CubeSpec& spec,
    const PartitionedCubeOptions& options) {
  if (options.window_width <= 0) {
    return Status::InvalidArgument("partition window_width must be positive");
  }
  if (options.partition_column.empty()) {
    return Status::InvalidArgument("partition_column is required");
  }
  std::optional<size_t> col =
      base_schema.FieldIndexIgnoreCase(options.partition_column);
  if (!col.has_value()) {
    return Status::InvalidArgument("partition column '" +
                                   options.partition_column +
                                   "' is not in the base schema");
  }
  if (base_schema.field(*col).type != DataType::kInt64) {
    return Status::InvalidArgument("partition column '" +
                                   options.partition_column +
                                   "' must be INT64");
  }
  if (!spec.decorations.empty()) {
    return Status::InvalidArgument(
        "partitioned cubes do not support decorations: a merged cell has no "
        "representative row in any single partition's base table");
  }

  auto cube = std::unique_ptr<PartitionedCube>(new PartitionedCube());
  cube->base_schema_ = base_schema;
  cube->spec_ = std::make_unique<CubeSpec>(spec);
  cube->options_ = options;
  cube->partition_col_ = *col;
  cube->retention_windows_.store(options.retention_windows,
                                 std::memory_order_relaxed);
  cube->list_ = std::make_shared<const PartitionList>();
  cube->compact_group_ = std::make_unique<TaskGroup>(ThreadPool::Global());

  // Validate the spec against the schema up front (and learn whether every
  // aggregate supports Merge) by building a context over an empty table.
  Table probe(base_schema);
  DATACUBE_ASSIGN_OR_RETURN(CubeContext ctx, BuildCubeContext(probe, spec));
  cube->mergeable_ = ctx.all_mergeable;
  return cube;
}

Result<std::unique_ptr<PartitionedCube>> PartitionedCube::Build(
    const Table& input, const CubeSpec& spec,
    const PartitionedCubeOptions& options) {
  DATACUBE_ASSIGN_OR_RETURN(std::unique_ptr<PartitionedCube> cube,
                            Create(input.schema(), spec, options));
  DATACUBE_RETURN_IF_ERROR(cube->IngestRows(input));
  return cube;
}

PartitionedCube::~PartitionedCube() {
  shutdown_.store(true, std::memory_order_relaxed);
  if (compact_group_ != nullptr) compact_group_->Wait();
}

Result<PartitionedCube::WindowKey> PartitionedCube::WindowOf(
    const Value& v) const {
  WindowKey key;
  if (v.is_null()) {
    key.null_window = true;
    return key;
  }
  if (v.kind() != Value::Kind::kInt64) {
    return Status::TypeError("partition key must be INT64 or NULL");
  }
  key.id = FloorDiv(v.int64_value(), options_.window_width);
  return key;
}

Status PartitionedCube::IngestRowLocked(const std::vector<Value>& row,
                                        size_t* late_rows) {
  if (row.size() != base_schema_.num_fields()) {
    return Status::InvalidArgument("ingest row width does not match schema");
  }
  DATACUBE_ASSIGN_OR_RETURN(WindowKey wk, WindowOf(row[partition_col_]));
  auto it = open_.find(wk);
  if (it == open_.end()) {
    Table empty(base_schema_);
    DATACUBE_ASSIGN_OR_RETURN(
        std::unique_ptr<MaterializedCube> delta,
        MaterializedCube::Build(empty, CloneSpecExprs(*spec_),
                                options_.cube));
    it = open_.emplace(wk, std::move(delta)).first;
  }
  // A row landing behind the newest window (or into an already-sealed one)
  // is a late arrival — it reopens a delta for its own window.
  if (!wk.null_window && max_window_.has_value() && wk.id < *max_window_) {
    ++*late_rows;
  }
  DATACUBE_RETURN_IF_ERROR(it->second->ApplyInsert(row));
  if (!wk.null_window) {
    max_window_ = max_window_.has_value() ? std::max(*max_window_, wk.id)
                                          : wk.id;
  }
  return Status::OK();
}

Status PartitionedCube::ApplyInsert(const std::vector<Value>& row) {
  size_t late = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DATACUBE_RETURN_IF_ERROR(IngestRowLocked(row, &late));
    UpdateGaugesLocked();
  }
  PartCounter("datacube_partition_ingest_rows_total",
              "Rows ingested into the partitioned store")
      .Inc(1);
  if (late > 0) {
    PartCounter("datacube_partition_late_rows_total",
                "Rows that arrived behind the newest window")
        .Inc(late);
  }
  MaybeScheduleCompaction();
  return Status::OK();
}

Status PartitionedCube::IngestRows(const Table& rows) {
  obs::ScopedSpan span("partition_ingest");
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(rows.num_rows()));
  }
  size_t late = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      DATACUBE_RETURN_IF_ERROR(IngestRowLocked(rows.GetRow(r), &late));
    }
    UpdateGaugesLocked();
  }
  PartCounter("datacube_partition_ingest_rows_total",
              "Rows ingested into the partitioned store")
      .Inc(rows.num_rows());
  if (late > 0) {
    PartCounter("datacube_partition_late_rows_total",
                "Rows that arrived behind the newest window")
        .Inc(late);
  }
  if (span.active()) span.Attr("late_rows", static_cast<uint64_t>(late));
  MaybeScheduleCompaction();
  return Status::OK();
}

std::shared_ptr<const PartitionedCube::Partition> PartitionedCube::FindLocked(
    const WindowKey& key) const {
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    if (p->key == key) return p;
  }
  return nullptr;
}

void PartitionedCube::PublishLocked(
    std::vector<std::shared_ptr<const Partition>> parts) {
  std::sort(parts.begin(), parts.end(),
            [](const std::shared_ptr<const Partition>& a,
               const std::shared_ptr<const Partition>& b) {
              return a->key < b->key;
            });
  auto next = std::make_shared<PartitionList>();
  next->parts = std::move(parts);
  next->version = list_->version + 1;
  list_ = std::move(next);
}

void PartitionedCube::SealLocked(bool all) {
  if (open_.empty()) return;
  const WindowKey newest = open_.rbegin()->first;
  std::vector<std::pair<WindowKey, std::shared_ptr<const MaterializedCube>>>
      sealed;
  for (auto it = open_.begin(); it != open_.end();) {
    if (!all && it->first == newest) {
      ++it;
      continue;
    }
    if (it->second->num_base_rows() == 0) {
      // An empty open delta (created then never written) just evaporates.
      it = open_.erase(it);
      continue;
    }
    sealed.emplace_back(it->first, std::shared_ptr<const MaterializedCube>(
                                       std::move(it->second)));
    it = open_.erase(it);
  }
  if (sealed.empty()) return;

  std::vector<std::shared_ptr<const Partition>> parts = list_->parts;
  for (auto& [wk, delta] : sealed) {
    auto np = std::make_shared<Partition>();
    auto pit = std::find_if(parts.begin(), parts.end(),
                            [&wk](const std::shared_ptr<const Partition>& p) {
                              return p->key == wk;
                            });
    if (pit != parts.end()) {
      *np = **pit;  // key, epoch, deltas, rows
    } else {
      np->key = wk;
    }
    np->deltas.push_back(delta);
    np->rows += delta->num_base_rows();
    np->compacted = false;
    ++np->epoch;
    if (pit != parts.end()) {
      *pit = std::move(np);
    } else {
      parts.push_back(std::move(np));
    }
  }
  PublishLocked(std::move(parts));
  PartCounter("datacube_partition_sealed_total",
              "Open deltas sealed into the partition list")
      .Inc(sealed.size());
}

void PartitionedCube::UpdateGaugesLocked() const {
  size_t open = open_.size();
  size_t sealed = 0;
  size_t compacted = 0;
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    if (open_.count(p->key) > 0) continue;  // reported as open
    if (p->compacted) {
      ++compacted;
    } else {
      ++sealed;
    }
  }
  PartGauge("datacube_partition_open", "Windows with a mutable open delta")
      .Set(static_cast<double>(open));
  PartGauge("datacube_partition_sealed",
            "Windows sealed but not yet compacted")
      .Set(static_cast<double>(sealed));
  PartGauge("datacube_partition_compacted",
            "Windows compacted to a single delta")
      .Set(static_cast<double>(compacted));
}

size_t PartitionedCube::CompactPass(bool seal_newest) {
  obs::ScopedSpan span("partition_compact");
  struct Candidate {
    WindowKey key;
    uint64_t epoch = 0;
    std::vector<std::shared_ptr<const MaterializedCube>> deltas;
  };
  std::vector<Candidate> cands;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SealLocked(seal_newest);
    bool flipped = false;
    std::vector<std::shared_ptr<const Partition>> parts = list_->parts;
    for (std::shared_ptr<const Partition>& p : parts) {
      if (p->deltas.size() > 1) {
        cands.push_back(Candidate{p->key, p->epoch, p->deltas});
      } else if (!p->compacted) {
        // One sealed delta IS its compacted form; flip the state in place
        // (same epoch — the delta set did not change).
        auto np = std::make_shared<Partition>(*p);
        np->compacted = true;
        p = std::move(np);
        flipped = true;
      }
    }
    if (flipped) PublishLocked(std::move(parts));
    UpdateGaugesLocked();
  }

  size_t rebuilt = 0;
  for (Candidate& c : cands) {
    auto t0 = std::chrono::steady_clock::now();
    // Rebuild off-lock from the concatenated delta rows; readers keep
    // merging the old deltas meanwhile.
    Table rows(base_schema_);
    bool ok = true;
    for (const std::shared_ptr<const MaterializedCube>& d : c.deltas) {
      Result<Table> live = d->LiveRows();
      if (!live.ok() || !rows.AppendTable(live.value()).ok()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    Result<std::unique_ptr<MaterializedCube>> built = MaterializedCube::Build(
        rows, CloneSpecExprs(*spec_), options_.cube);
    if (!built.ok()) continue;
    std::shared_ptr<const MaterializedCube> merged = std::move(built.value());

    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<const Partition> cur = FindLocked(c.key);
      if (cur == nullptr || cur->epoch != c.epoch) {
        // A late arrival sealed into this window (or retention dropped it)
        // while we rebuilt; the rebuild is stale — throw it away.
        PartCounter("datacube_partition_compaction_aborts_total",
                    "Compaction rebuilds discarded by a concurrent seal/drop")
            .Inc(1);
        continue;
      }
      auto np = std::make_shared<Partition>();
      np->key = c.key;
      np->compacted = true;
      np->epoch = cur->epoch + 1;
      np->deltas = {merged};
      np->rows = merged->num_base_rows();
      std::vector<std::shared_ptr<const Partition>> parts = list_->parts;
      for (std::shared_ptr<const Partition>& p : parts) {
        if (p->key == c.key) p = std::move(np);
      }
      PublishLocked(std::move(parts));
      UpdateGaugesLocked();
    }
    ++rebuilt;
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    PartCounter("datacube_partition_compactions_total",
                "Multi-delta windows rebuilt into one cube")
        .Inc(1);
    PartGauge("datacube_partition_compaction_wall_ms",
              "Wall milliseconds of the most recent window rebuild")
        .Set(ms);
  }
  if (span.active()) {
    span.Attr("rebuilt", static_cast<uint64_t>(rebuilt));
  }
  ApplyRetention();
  return rebuilt;
}

size_t PartitionedCube::CompactNow() {
  return CompactPass(/*seal_newest=*/true);
}

void PartitionedCube::MaybeScheduleCompaction() {
  if (!options_.background_compaction) return;
  if (shutdown_.load(std::memory_order_relaxed)) return;
  bool wanted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Cold open windows to seal, multi-delta windows to rebuild, or
    // windows past the retention horizon to drop?
    wanted = open_.size() > 1;
    if (!wanted) {
      for (const std::shared_ptr<const Partition>& p : list_->parts) {
        if (p->deltas.size() > 1) {
          wanted = true;
          break;
        }
      }
    }
    int64_t keep = retention_windows_.load(std::memory_order_relaxed);
    if (!wanted && keep > 0 && max_window_.has_value()) {
      int64_t min_keep = *max_window_ - keep + 1;
      for (const std::shared_ptr<const Partition>& p : list_->parts) {
        if (!p->key.null_window && p->key.id < min_keep) {
          wanted = true;
          break;
        }
      }
      if (!wanted && !open_.empty()) {
        const WindowKey& oldest = open_.begin()->first;
        wanted = !oldest.null_window && oldest.id < min_keep;
      }
    }
  }
  if (!wanted) return;
  if (compaction_pending_.exchange(true, std::memory_order_acq_rel)) return;
  compact_group_->Spawn([this] {
    if (!shutdown_.load(std::memory_order_relaxed)) {
      CompactPass(/*seal_newest=*/false);
    }
    compaction_pending_.store(false, std::memory_order_release);
  });
}

size_t PartitionedCube::ApplyRetention() {
  int64_t keep = retention_windows_.load(std::memory_order_relaxed);
  if (keep <= 0) return 0;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!max_window_.has_value()) return 0;
    const int64_t min_keep = *max_window_ - keep + 1;
    std::set<int64_t> dropped_windows;
    for (auto it = open_.begin(); it != open_.end();) {
      if (!it->first.null_window && it->first.id < min_keep) {
        dropped_windows.insert(it->first.id);
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
    bool changed = false;
    std::vector<std::shared_ptr<const Partition>> kept;
    kept.reserve(list_->parts.size());
    for (const std::shared_ptr<const Partition>& p : list_->parts) {
      if (!p->key.null_window && p->key.id < min_keep) {
        dropped_windows.insert(p->key.id);
        changed = true;
      } else {
        kept.push_back(p);
      }
    }
    if (changed) PublishLocked(std::move(kept));
    dropped = dropped_windows.size();
    if (dropped > 0) UpdateGaugesLocked();
  }
  if (dropped > 0) {
    PartCounter("datacube_partition_dropped_total",
                "Windows dropped past the retention horizon")
        .Inc(dropped);
  }
  return dropped;
}

Result<Table> PartitionedCube::PrunedRows(const std::optional<int64_t>& lo,
                                          const std::optional<int64_t>& hi,
                                          PartitionPruneStats* stats) const {
  obs::ScopedSpan span("partition_prune");
  const bool has_bound = lo.has_value() || hi.has_value();
  // Comparing WINDOW ids (not raw keys) keeps the arithmetic overflow-free.
  const int64_t wlo =
      lo.has_value() ? FloorDiv(*lo, options_.window_width) : 0;
  const int64_t whi =
      hi.has_value() ? FloorDiv(*hi, options_.window_width) : 0;
  const bool has_lo = lo.has_value();
  const bool has_hi = hi.has_value();
  // A window survives when it can hold a key in [lo, hi]. The NULL window
  // never can once any bound exists: NULL fails every comparison.
  auto selected = [&](const WindowKey& k) {
    if (k.null_window) return !has_bound;
    if (has_lo && k.id < wlo) return false;
    if (has_hi && k.id > whi) return false;
    return true;
  };

  Table out(base_schema_);
  std::vector<std::shared_ptr<const MaterializedCube>> frozen;
  std::set<std::pair<bool, int64_t>> all_windows;
  std::set<std::pair<bool, int64_t>> scanned_windows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [wk, delta] : open_) {
      all_windows.emplace(wk.null_window, wk.id);
      if (!selected(wk)) continue;
      scanned_windows.emplace(wk.null_window, wk.id);
      // Open deltas are mutable: copy their rows out under the lock.
      DATACUBE_ASSIGN_OR_RETURN(Table live, delta->LiveRows());
      DATACUBE_RETURN_IF_ERROR(out.AppendTable(live));
    }
    for (const std::shared_ptr<const Partition>& p : list_->parts) {
      all_windows.emplace(p->key.null_window, p->key.id);
      if (!selected(p->key)) continue;
      scanned_windows.emplace(p->key.null_window, p->key.id);
      for (const std::shared_ptr<const MaterializedCube>& d : p->deltas) {
        frozen.push_back(d);
      }
    }
  }
  // Sealed deltas are immutable; read them off-lock.
  for (const std::shared_ptr<const MaterializedCube>& d : frozen) {
    DATACUBE_ASSIGN_OR_RETURN(Table live, d->LiveRows());
    DATACUBE_RETURN_IF_ERROR(out.AppendTable(live));
  }
  const size_t total = all_windows.size();
  const size_t scanned = scanned_windows.size();
  if (stats != nullptr) {
    stats->total = total;
    stats->scanned = scanned;
    stats->pruned = total - scanned;
  }
  if (total > scanned) {
    PartCounter("datacube_partition_pruned_total",
                "Windows skipped by partition-key pruning")
        .Inc(total - scanned);
  }
  if (span.active()) {
    span.Attr("partitions_total", static_cast<uint64_t>(total));
    span.Attr("partitions_scanned", static_cast<uint64_t>(scanned));
    span.Attr("partitions_pruned", static_cast<uint64_t>(total - scanned));
  }
  return out;
}

Result<Table> PartitionedCube::MergedTable(
    const std::optional<GroupingSet>& only) {
  if (!mergeable_) {
    // Holistic aggregates cannot merge partition scratchpads; recompute
    // over the concatenated live rows instead.
    DATACUBE_ASSIGN_OR_RETURN(Table rows,
                              PrunedRows(std::nullopt, std::nullopt));
    CubeSpec qspec = CloneSpecExprs(*spec_);
    if (only.has_value()) {
      qspec.explicit_sets = std::vector<GroupingSet>{*only};
    }
    DATACUBE_ASSIGN_OR_RETURN(CubeResult r,
                              ExecuteCube(rows, qspec, options_.cube));
    return std::move(r.table);
  }

  obs::ScopedSpan span("partition_merge_read");
  DATACUBE_ASSIGN_OR_RETURN(std::unique_ptr<MergeSink> sink,
                            MakeSink(base_schema_, *spec_, only));
  std::vector<std::shared_ptr<const MaterializedCube>> frozen;
  size_t open_folded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fold the (small, mutable) open deltas under the lock; pin the sealed
    // deltas and fold them lock-free below.
    for (const auto& [wk, delta] : open_) {
      DATACUBE_RETURN_IF_ERROR(FoldCube(*sink, *delta));
      ++open_folded;
    }
    for (const std::shared_ptr<const Partition>& p : list_->parts) {
      for (const std::shared_ptr<const MaterializedCube>& d : p->deltas) {
        frozen.push_back(d);
      }
    }
  }
  size_t shards = 0;
  if (frozen.size() >= 2) {
    // Partition-parallel read: fan the sealed-delta folds over the pool,
    // one private sink per shard, then combine shard sinks in shard order.
    // ParallelStatusFor surfaces the first error by shard index, so even
    // failures are deterministic.
    shards = std::min(frozen.size(), kMergeReadFanout);
    std::vector<std::unique_ptr<MergeSink>> shard_sinks(shards);
    DATACUBE_RETURN_IF_ERROR(ParallelStatusFor(
        ThreadPool::Global(), shards, [&](size_t i) -> Status {
          DATACUBE_ASSIGN_OR_RETURN(shard_sinks[i],
                                    MakeSink(base_schema_, *spec_, only));
          for (size_t d = i; d < frozen.size(); d += shards) {
            DATACUBE_RETURN_IF_ERROR(FoldCube(*shard_sinks[i], *frozen[d]));
          }
          return Status::OK();
        }));
    for (size_t i = 0; i < shards; ++i) {
      DATACUBE_RETURN_IF_ERROR(FoldSink(*sink, *shard_sinks[i]));
    }
  } else {
    for (const std::shared_ptr<const MaterializedCube>& d : frozen) {
      DATACUBE_RETURN_IF_ERROR(FoldCube(*sink, *d));
    }
  }
  if (span.active()) {
    span.Attr("deltas_merged",
              static_cast<uint64_t>(frozen.size() + open_folded));
    span.Attr("merge_shards", static_cast<uint64_t>(shards));
  }
  CubeStats stats;
  return AssembleColumnarResult(sink->cc, sink->stores, &stats);
}

Result<Table> PartitionedCube::QuerySet(GroupingSet target) {
  std::vector<GroupingSet> sets = spec_->GroupingSets();
  if (std::find(sets.begin(), sets.end(), target) == sets.end()) {
    return Status::NotFound("grouping set is not part of this cube's spec");
  }
  return MergedTable(target);
}

Result<Table> PartitionedCube::ToTable() { return MergedTable(std::nullopt); }

size_t PartitionedCube::num_base_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t rows = 0;
  for (const auto& [wk, delta] : open_) rows += delta->num_base_rows();
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    rows += p->rows;
  }
  return rows;
}

size_t PartitionedCube::num_partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::pair<bool, int64_t>> windows;
  for (const auto& [wk, delta] : open_) {
    windows.emplace(wk.null_window, wk.id);
  }
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    windows.emplace(p->key.null_window, p->key.id);
  }
  return windows.size();
}

std::vector<PartitionedCube::PartitionInfo> PartitionedCube::Partitions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<WindowKey, PartitionInfo> infos;
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    PartitionInfo& info = infos[p->key];
    info.window_id = p->key.id;
    info.null_window = p->key.null_window;
    info.state = p->compacted ? "compacted" : "sealed";
    info.deltas = p->deltas.size();
    info.rows = p->rows;
  }
  for (const auto& [wk, delta] : open_) {
    PartitionInfo& info = infos[wk];
    info.window_id = wk.id;
    info.null_window = wk.null_window;
    info.state = "open";
    info.deltas += 1;
    info.rows += delta->num_base_rows();
  }
  std::vector<PartitionInfo> out;
  out.reserve(infos.size());
  for (auto& [wk, info] : infos) out.push_back(info);
  return out;
}

Status PartitionedCube::SaveToFile(const std::string& path) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint directory " + path +
                           ": " + ec.message());
  }
  // Hold the lock across the whole save: open deltas must not move under
  // the serializer. (Checkpointing is an admin operation, not a hot path.)
  std::lock_guard<std::mutex> lock(mu_);
  struct Entry {
    WindowKey key;
    bool compacted = false;
    std::vector<const MaterializedCube*> deltas;
  };
  std::map<WindowKey, Entry> entries;
  for (const std::shared_ptr<const Partition>& p : list_->parts) {
    Entry& e = entries[p->key];
    e.key = p->key;
    e.compacted = p->compacted;
    for (const std::shared_ptr<const MaterializedCube>& d : p->deltas) {
      e.deltas.push_back(d.get());
    }
  }
  for (const auto& [wk, delta] : open_) {
    if (delta->num_base_rows() == 0) continue;
    Entry& e = entries[wk];
    e.key = wk;
    e.compacted = false;
    e.deltas.push_back(delta.get());
  }

  std::ostringstream manifest;
  manifest << kManifestMagic << "\n";
  manifest << "window_width " << options_.window_width << "\n";
  manifest << "partition_column " << options_.partition_column << "\n";
  manifest << "partitions " << entries.size() << "\n";
  size_t index = 0;
  for (const auto& [wk, e] : entries) {
    manifest << "part " << (wk.null_window ? 1 : 0) << " " << wk.id << " "
             << (e.compacted ? 1 : 0) << " " << e.deltas.size() << "\n";
    for (size_t d = 0; d < e.deltas.size(); ++d) {
      fs::path file =
          fs::path(path) / ("part" + std::to_string(index) + "_delta" +
                            std::to_string(d) + ".ckpt");
      DATACUBE_RETURN_IF_ERROR(e.deltas[d]->SaveToFile(file.string()));
    }
    ++index;
  }
  std::ofstream out(fs::path(path) / "MANIFEST",
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write manifest under " + path);
  }
  out << manifest.str();
  out.flush();
  if (!out) {
    return Status::IOError("manifest write failed under " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<PartitionedCube>> PartitionedCube::LoadFromDir(
    const Schema& base_schema, const CubeSpec& spec,
    const PartitionedCubeOptions& options, const std::string& path) {
  namespace fs = std::filesystem;
  DATACUBE_ASSIGN_OR_RETURN(std::unique_ptr<PartitionedCube> cube,
                            Create(base_schema, spec, options));
  std::ifstream in(fs::path(path) / "MANIFEST", std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open partition manifest under " + path);
  }
  std::string magic;
  if (!std::getline(in, magic) || magic != kManifestMagic) {
    return Status::ParseError("bad partition manifest magic under " + path);
  }
  std::string word;
  int64_t width = 0;
  std::string column;
  size_t num_parts = 0;
  if (!(in >> word >> width) || word != "window_width") {
    return Status::ParseError("bad partition manifest: window_width");
  }
  if (!(in >> word >> column) || word != "partition_column") {
    return Status::ParseError("bad partition manifest: partition_column");
  }
  if (width != options.window_width ||
      column != options.partition_column) {
    return Status::InvalidArgument(
        "partition checkpoint was written with a different window layout");
  }
  if (!(in >> word >> num_parts) || word != "partitions") {
    return Status::ParseError("bad partition manifest: partitions");
  }
  std::vector<std::shared_ptr<const Partition>> parts;
  parts.reserve(num_parts);
  for (size_t i = 0; i < num_parts; ++i) {
    int null_window = 0;
    int64_t id = 0;
    int compacted = 0;
    size_t num_deltas = 0;
    if (!(in >> word >> null_window >> id >> compacted >> num_deltas) ||
        word != "part") {
      return Status::ParseError("bad partition manifest: part entry");
    }
    auto p = std::make_shared<Partition>();
    p->key.null_window = (null_window != 0);
    p->key.id = id;
    p->compacted = (compacted != 0);
    p->epoch = num_deltas;
    for (size_t d = 0; d < num_deltas; ++d) {
      fs::path file = fs::path(path) / ("part" + std::to_string(i) +
                                        "_delta" + std::to_string(d) +
                                        ".ckpt");
      DATACUBE_ASSIGN_OR_RETURN(
          std::unique_ptr<MaterializedCube> delta,
          MaterializedCube::LoadFromFile(CloneSpecExprs(spec),
                                         file.string()));
      p->rows += delta->num_base_rows();
      p->deltas.emplace_back(std::move(delta));
    }
    if (!p->key.null_window) {
      cube->max_window_ = cube->max_window_.has_value()
                              ? std::max(*cube->max_window_, p->key.id)
                              : p->key.id;
    }
    parts.push_back(std::move(p));
  }
  std::lock_guard<std::mutex> lock(cube->mu_);
  cube->PublishLocked(std::move(parts));
  cube->UpdateGaugesLocked();
  return cube;
}

}  // namespace datacube
