#include "datacube/cube/cube_internal.h"

namespace datacube {
namespace cube_internal {

// The Section 2 baseline the CUBE operator was invented to replace: express
// the cube as a UNION of independent GROUP BYs, one per grouping set — "on
// most SQL systems this will result in 64 scans of the data, 64 sorts or
// hashes, and a long wait". Each grouping set re-scans and re-hashes the
// full input.
Result<SetMaps> ComputeUnionGroupBy(const CubeContext& ctx, CubeStats* stats) {
  if (stats != nullptr) stats->algorithm_used = CubeAlgorithm::kUnionGroupBy;
  SetMaps maps;
  maps.reserve(ctx.sets.size());
  for (GroupingSet set : ctx.sets) {
    maps.push_back(HashGroupBy(ctx, set, stats));
  }
  return maps;
}

}  // namespace cube_internal
}  // namespace datacube
