#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datacube/cube/columnar.h"
#include "datacube/obs/trace.h"

namespace datacube {
namespace cube_internal {

namespace {

constexpr size_t kChunkTargetBytes = 64 * 1024;
constexpr size_t kInitialCapacity = 16;

size_t RoundUp(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}

// splitmix64 finalizer, folded across key words.
inline uint64_t MixWord(uint64_t h, uint64_t word) {
  uint64_t x = word + h + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Process-wide escape hatch mirroring DATACUBE_LEGACY_CELLS: any
// non-empty value other than "0" forces the scalar per-row Iter path.
bool ScalarKernelsForced() {
  const char* env = std::getenv("DATACUBE_SCALAR_KERNELS");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

}  // namespace

uint64_t HashPackedKey(const uint64_t* key, size_t words) {
  uint64_t h = 0;
  for (size_t w = 0; w < words; ++w) h = MixWord(h, key[w]);
  return h;
}

// ---------------------------------------------------------------- layout

StateLayout StateLayout::Build(const std::vector<AggregateFunctionPtr>& aggs) {
  StateLayout layout;
  size_t offset = sizeof(CellHeader);
  size_t align = alignof(CellHeader);
  layout.slots.reserve(aggs.size());
  for (const AggregateFunctionPtr& fn : aggs) {
    StateSlot slot;
    size_t size = fn->state_size();
    size_t slot_align;
    if (size > 0) {
      slot.is_inline = true;
      slot_align = fn->state_align();
    } else {
      size = sizeof(AggStatePtr);
      slot_align = alignof(AggStatePtr);
      ++layout.num_compat;
    }
    offset = RoundUp(offset, slot_align);
    slot.offset = offset;
    offset += size;
    align = std::max(align, slot_align);
    layout.slots.push_back(slot);
  }
  layout.block_align = align;
  layout.block_size = RoundUp(std::max(offset, sizeof(char*)), align);

  // Cache the slot -> AggState pointer adjustment for inline states so hot
  // loops skip the virtual StateAt. The adjustment is a property of the
  // state type, identical for every block.
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (!layout.slots[a].is_inline) continue;
    const AggregateFunction& fn = *aggs[a];
    size_t size = fn.state_size();
    size_t slot_align = fn.state_align();
    std::unique_ptr<char[]> raw(new char[size + slot_align]);
    char* p = reinterpret_cast<char*>(
        RoundUp(reinterpret_cast<uintptr_t>(raw.get()), slot_align));
    fn.InitAt(p);
    layout.slots[a].adjust = reinterpret_cast<char*>(fn.StateAt(p)) - p;
    fn.DestroyAt(p);
  }
  return layout;
}

// ----------------------------------------------------------------- arena

CellArena::CellArena(size_t block_size, size_t align)
    : block_size_(RoundUp(std::max(block_size, sizeof(char*)), align)),
      blocks_per_chunk_(std::max<size_t>(1, kChunkTargetBytes / block_size_)) {
}

char* CellArena::Alloc() {
  if (free_list_ != nullptr) {
    char* block = free_list_;
    std::memcpy(&free_list_, block, sizeof(char*));
    return block;
  }
  if (left_in_chunk_ == 0) {
    // operator new aligns to max_align_t, which covers every aggregate
    // state built-in; block_size_ is a multiple of the block alignment so
    // successive blocks stay aligned.
    size_t chunk_bytes = blocks_per_chunk_ * block_size_;
    chunks_.emplace_back(new char[chunk_bytes]);
    next_ = chunks_.back().get();
    left_in_chunk_ = blocks_per_chunk_;
    bytes_ += chunk_bytes;
  }
  char* block = next_;
  next_ += block_size_;
  --left_in_chunk_;
  return block;
}

void CellArena::Free(char* block) {
  std::memcpy(block, &free_list_, sizeof(char*));
  free_list_ = block;
}

// ----------------------------------------------------------------- store

CellStore::CellStore(const ColumnarContext* cc, CellArenaPtr arena)
    : cc_(cc),
      arena_(arena != nullptr
                 ? std::move(arena)
                 : std::make_shared<CellArena>(cc->layout.block_size,
                                               cc->layout.block_align)),
      words_(cc->words) {}

void CellStore::ReleaseAll() {
  std::fill(blocks_.begin(), blocks_.end(), nullptr);
  size_ = 0;
}

CellStore::CellStore(CellStore&& other) noexcept { *this = std::move(other); }

CellStore& CellStore::operator=(CellStore&& other) noexcept {
  if (this == &other) return *this;
  for (char* block : blocks_) {
    if (block != nullptr) DestroyBlock(block);
  }
  cc_ = other.cc_;
  arena_ = std::move(other.arena_);
  retained_ = std::move(other.retained_);
  keys_ = std::move(other.keys_);
  blocks_ = std::move(other.blocks_);
  cap_ = other.cap_;
  size_ = other.size_;
  words_ = other.words_;
  stats_ = other.stats_;
  other.cap_ = 0;
  other.size_ = 0;
  other.blocks_.clear();
  return *this;
}

CellStore::~CellStore() {
  if (size_ == 0) return;
  for (size_t i = 0; i < cap_; ++i) {
    if (blocks_[i] != nullptr) DestroyBlock(blocks_[i]);
  }
  size_ = 0;
}

uint64_t CellStore::HashKey(const uint64_t* key) const {
  return HashPackedKey(key, words_);
}

size_t CellStore::ProbeFor(const uint64_t* key, bool* found) const {
  return ProbeWithHash(HashKey(key), key, found);
}

size_t CellStore::ProbeWithHash(uint64_t hash, const uint64_t* key,
                                bool* found) const {
  size_t mask = cap_ - 1;
  size_t i = hash & mask;
  uint64_t len = 1;
  while (true) {
    if (blocks_[i] == nullptr) {
      *found = false;
      break;
    }
    if (KeyEquals(i, key)) {
      *found = true;
      break;
    }
    i = (i + 1) & mask;
    ++len;
  }
  stats_.probes += len;
  stats_.max_probe = std::max(stats_.max_probe, len);
  return i;
}

void CellStore::Grow() {
  GrowTo(cap_ == 0 ? kInitialCapacity : cap_ * 2);
}

void CellStore::Reserve(size_t cells) {
  size_t needed = kInitialCapacity;
  while (cells * 10 > needed * 7) needed *= 2;
  if (needed > cap_) GrowTo(needed);
}

void CellStore::GrowTo(size_t new_cap) {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<char*> old_blocks = std::move(blocks_);
  size_t old_cap = cap_;
  keys_.assign(new_cap * words_, 0);
  blocks_.assign(new_cap, nullptr);
  cap_ = new_cap;
  if (old_cap != 0) ++stats_.rehashes;
  size_t mask = new_cap - 1;
  for (size_t i = 0; i < old_cap; ++i) {
    if (old_blocks[i] == nullptr) continue;
    const uint64_t* key = old_keys.data() + i * words_;
    size_t j = HashKey(key) & mask;
    while (blocks_[j] != nullptr) j = (j + 1) & mask;
    std::memcpy(keys_.data() + j * words_, key, words_ * sizeof(uint64_t));
    blocks_[j] = old_blocks[i];
  }
}

char* CellStore::Find(const uint64_t* key) const {
  if (size_ == 0) return nullptr;
  bool found;
  size_t i = ProbeFor(key, &found);
  return found ? blocks_[i] : nullptr;
}

char* CellStore::InsertAtSlot(size_t slot, const uint64_t* key) {
  std::memcpy(keys_.data() + slot * words_, key, words_ * sizeof(uint64_t));
  char* block = arena_->Alloc();
  ::new (block) CellHeader();
  const std::vector<AggregateFunctionPtr>& aggs = cc_->ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    aggs[a]->InitAt(block + cc_->layout.slots[a].offset);
  }
  stats_.heap_state_allocs += cc_->layout.num_compat;
  blocks_[slot] = block;
  ++size_;
  return block;
}

char* CellStore::FindOrInsert(const uint64_t* key, bool* inserted) {
  // Grow at ~0.7 load factor.
  if (cap_ == 0 || (size_ + 1) * 10 > cap_ * 7) Grow();
  bool found;
  size_t i = ProbeFor(key, &found);
  if (inserted != nullptr) *inserted = !found;
  if (found) return blocks_[i];
  return InsertAtSlot(i, key);
}

void CellStore::BatchUpsert(const uint64_t* keys, size_t n,
                            char** out_blocks) {
  if (n == 0) return;
  // Phase 1 — hash every key in one auto-vectorizable sweep. The hash is
  // capacity-independent, so the cache survives any Grow() below.
  batch_hash_.resize(n);
  if (words_ == 1) {
    for (size_t i = 0; i < n; ++i) batch_hash_[i] = MixWord(0, keys[i]);
  } else {
    for (size_t i = 0; i < n; ++i) {
      batch_hash_[i] = HashPackedKey(keys + i * words_, words_);
    }
  }
  // Phase 2 — probe with the cached hashes, prefetching the home slot a
  // few keys ahead so the random access into keys_/blocks_ overlaps the
  // current chain walk. Growth schedule and probe counters are the same as
  // n scalar FindOrInsert calls.
  constexpr size_t kPrefetchAhead = 8;
  for (size_t i = 0; i < n; ++i) {
    if (cap_ == 0 || (size_ + 1) * 10 > cap_ * 7) Grow();
    if (i + kPrefetchAhead < n) {
      size_t ahead = batch_hash_[i + kPrefetchAhead] & (cap_ - 1);
      __builtin_prefetch(&blocks_[ahead]);
      __builtin_prefetch(keys_.data() + ahead * words_);
    }
    const uint64_t* key = keys + i * words_;
    bool found;
    size_t slot = ProbeWithHash(batch_hash_[i], key, &found);
    out_blocks[i] = found ? blocks_[slot] : InsertAtSlot(slot, key);
  }
}

char* CellStore::InsertClone(const uint64_t* key, const char* src_block) {
  if (cap_ == 0 || (size_ + 1) * 10 > cap_ * 7) Grow();
  bool found;
  size_t i = ProbeFor(key, &found);
  std::memcpy(keys_.data() + i * words_, key, words_ * sizeof(uint64_t));
  char* block = arena_->Alloc();
  ::new (block) CellHeader(*ColumnarContext::Header(src_block));
  const std::vector<AggregateFunctionPtr>& aggs = cc_->ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    size_t offset = cc_->layout.slots[a].offset;
    aggs[a]->CloneAt(src_block + offset, block + offset);
  }
  stats_.heap_state_allocs += cc_->layout.num_compat;
  blocks_[i] = block;
  ++size_;
  return block;
}

void CellStore::InsertAdopt(const uint64_t* key, char* block) {
  if (cap_ == 0 || (size_ + 1) * 10 > cap_ * 7) Grow();
  bool found;
  size_t i = ProbeFor(key, &found);
  std::memcpy(keys_.data() + i * words_, key, words_ * sizeof(uint64_t));
  blocks_[i] = block;
  ++size_;
}

void CellStore::AbsorbDisjoint(CellStore&& other) {
  Reserve(size_ + other.size_);
  other.ForEach(
      [&](const uint64_t* key, char* block) { InsertAdopt(key, block); });
  stats_.probes += other.stats_.probes;
  stats_.max_probe = std::max(stats_.max_probe, other.stats_.max_probe);
  stats_.rehashes += other.stats_.rehashes;
  stats_.heap_state_allocs += other.stats_.heap_state_allocs;
  // The adopted blocks still live in other's arena(s); keep them alive for
  // this store's lifetime. Free() of a foreign block into our free list is
  // sound — blocks are uniform-size and the chunk owning the memory is
  // retained here.
  if (other.arena_ != nullptr) retained_.push_back(std::move(other.arena_));
  for (CellArenaPtr& a : other.retained_) retained_.push_back(std::move(a));
  other.retained_.clear();
  other.ReleaseAll();
}

void CellStore::DestroyBlock(char* block) {
  const std::vector<AggregateFunctionPtr>& aggs = cc_->ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    aggs[a]->DestroyAt(block + cc_->layout.slots[a].offset);
  }
  arena_->Free(block);
}

bool CellStore::Erase(const uint64_t* key) {
  if (size_ == 0) return false;
  bool found;
  size_t i = ProbeFor(key, &found);
  if (!found) return false;
  DestroyBlock(blocks_[i]);
  blocks_[i] = nullptr;
  --size_;
  // Backward-shift deletion keeps probe chains gap-free without
  // tombstones: walk the chain after the hole and move back every entry
  // whose home slot lies at or before the hole.
  size_t mask = cap_ - 1;
  size_t hole = i;
  size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (blocks_[j] == nullptr) break;
    size_t home = HashKey(keys_.data() + j * words_) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      std::memcpy(keys_.data() + hole * words_, keys_.data() + j * words_,
                  words_ * sizeof(uint64_t));
      blocks_[hole] = blocks_[j];
      blocks_[j] = nullptr;
      hole = j;
    }
  }
  return true;
}

// --------------------------------------------------------------- context

Result<ColumnarContext> BuildColumnarContext(const CubeContext& ctx) {
  obs::ScopedSpan span("build_columnar_context");
  ColumnarContext cc;
  cc.ctx = &ctx;
  // Encode each grouping column from its cheapest source: the typed table
  // column when the key is a lazily materialized column reference, the
  // evaluated Value vector otherwise.
  std::vector<KeyColumnSource> sources(ctx.num_keys);
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    if (ctx.key_columns[k].empty() && ctx.key_source_columns[k] != nullptr &&
        ctx.num_rows() > 0) {
      sources[k].column = ctx.key_source_columns[k];
    } else {
      sources[k].values = &ctx.key_columns[k];
    }
  }
  std::vector<std::vector<uint32_t>> row_codes;
  cc.codec = KeyCodec::Build(sources, ctx.num_rows(), &row_codes);
  cc.layout = StateLayout::Build(ctx.aggs);
  cc.words = cc.codec.words();
  cc.row_keys.assign(ctx.num_rows() * cc.words, 0);
  for (size_t k = 0; k < ctx.num_keys; ++k) {
    cc.codec.SetCodesBatch(k, row_codes[k].data(), ctx.num_rows(),
                           cc.row_keys.data(), cc.words);
  }
  // Batch-kernel plan: one argument descriptor per (aggregate, arg). The
  // materialized Value column is always present; the raw typed buffer and
  // state codes ride along when the argument is a plain column reference,
  // letting type-specialized kernels skip Value dispatch entirely.
  cc.use_batch = !ScalarKernelsForced();
  cc.batch_args.resize(ctx.aggs.size());
  for (size_t a = 0; a < ctx.aggs.size(); ++a) {
    const auto& arg_columns = ctx.agg_args[a];
    cc.batch_args[a].resize(arg_columns.size());
    for (size_t i = 0; i < arg_columns.size(); ++i) {
      AggBatchArg& ba = cc.batch_args[a][i];
      ba.values = arg_columns[i].data();
      const Column* col = a < ctx.agg_source_columns.size() &&
                                  i < ctx.agg_source_columns[a].size()
                              ? ctx.agg_source_columns[a][i]
                              : nullptr;
      if (col == nullptr || col->size() != ctx.num_rows()) continue;
      ba.type = col->type();
      ba.states = col->state_codes();
      switch (col->type()) {
        case DataType::kInt64:
          ba.data = col->raw<int64_t>().data();
          break;
        case DataType::kFloat64:
          ba.data = col->raw<double>().data();
          break;
        default:
          break;  // Kernels take the Value view for other types.
      }
    }
  }
  if (span.active()) {
    span.Attr("key_bits", static_cast<uint64_t>(cc.codec.total_bits()));
    span.Attr("key_words", static_cast<uint64_t>(cc.words));
    span.Attr("block_bytes", static_cast<uint64_t>(cc.layout.block_size));
    span.Attr("inline_states",
              static_cast<uint64_t>(ctx.aggs.size() - cc.layout.num_compat));
  }
  return cc;
}

void ColumnarContext::RepackRowKeys() {
  words = codec.words();
  row_keys.assign(ctx->num_rows() * words, 0);
  for (size_t row = 0; row < ctx->num_rows(); ++row) {
    codec.EncodeRow(ctx->key_columns, row, &row_keys[row * words]);
  }
}

char* ColumnarContext::NewBlock(CellArena& arena,
                                CellStore::Stats* stats) const {
  char* block = arena.Alloc();
  ::new (block) CellHeader();
  const std::vector<AggregateFunctionPtr>& aggs = ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    aggs[a]->InitAt(block + layout.slots[a].offset);
  }
  if (stats != nullptr) stats->heap_state_allocs += layout.num_compat;
  return block;
}

void ColumnarContext::IterRow(char* block, size_t row,
                              CubeStats* stats) const {
  CellHeader* h = Header(block);
  if (!h->has_repr) {
    h->repr_row = row;
    h->has_repr = true;
  }
  ++h->count;
  Value argv[8];
  const std::vector<AggregateFunctionPtr>& aggs = ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const auto& arg_columns = ctx->agg_args[a];
    size_t nargs = arg_columns.size();
    // Single-argument aggregates read the evaluated column in place — no
    // per-row Value copies on the hot path.
    const Value* args;
    if (nargs == 1) {
      args = &arg_columns[0][row];
    } else {
      for (size_t i = 0; i < nargs; ++i) argv[i] = arg_columns[i][row];
      args = argv;
    }
    aggs[a]->Iter(StateOf(block, a), args, nargs);
  }
  if (stats != nullptr) stats->iter_calls += aggs.size();
}

void ColumnarContext::BatchIterRows(char* const* blocks, const uint32_t* rows,
                                    size_t base, size_t n,
                                    CubeStats* stats) const {
  // Header sweep first: per-cell row counts and first-touch representative
  // rows do not depend on any aggregate, so one pass covers them all.
  for (size_t i = 0; i < n; ++i) {
    CellHeader* h = Header(blocks[i]);
    if (!h->has_repr) {
      h->repr_row = rows != nullptr ? rows[i] : base + i;
      h->has_repr = true;
    }
    ++h->count;
  }
  // Then one column sweep per aggregate. Sweeping aggregates one at a time
  // (rather than per row) reorders only *between* independent states —
  // each cell still folds its rows in input order.
  const std::vector<AggregateFunctionPtr>& aggs = ctx->aggs;
  AggBatch batch;
  batch.blocks = blocks;
  batch.rows = rows;
  batch.base = base;
  batch.n = n;
  Value argv[8];
  for (size_t a = 0; a < aggs.size(); ++a) {
    batch.slot_offset = layout.slots[a].offset;
    batch.args = batch_args[a].data();
    batch.nargs = batch_args[a].size();
    if (layout.slots[a].is_inline && aggs[a]->IterBatch(batch)) continue;
    // Scalar replay: aggregates without a batch kernel (holistic,
    // DISTINCT-wrapped, UDAs) keep the exact per-row protocol.
    const auto& arg_columns = ctx->agg_args[a];
    size_t nargs = arg_columns.size();
    for (size_t i = 0; i < n; ++i) {
      size_t row = rows != nullptr ? rows[i] : base + i;
      const Value* args;
      if (nargs == 1) {
        args = &arg_columns[0][row];
      } else {
        for (size_t j = 0; j < nargs; ++j) argv[j] = arg_columns[j][row];
        args = argv;
      }
      aggs[a]->Iter(StateOf(blocks[i], a), args, nargs);
    }
  }
  if (stats != nullptr) stats->iter_calls += aggs.size() * n;
}

Status ColumnarContext::RemoveRow(char* block, size_t row) const {
  Value argv[8];
  const std::vector<AggregateFunctionPtr>& aggs = ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const auto& arg_columns = ctx->agg_args[a];
    size_t nargs = arg_columns.size();
    const Value* args;
    if (nargs == 1) {
      args = &arg_columns[0][row];
    } else {
      for (size_t i = 0; i < nargs; ++i) argv[i] = arg_columns[i][row];
      args = argv;
    }
    DATACUBE_RETURN_IF_ERROR(aggs[a]->Remove(StateOf(block, a), args, nargs));
  }
  return Status::OK();
}

Status ColumnarContext::MergeCell(char* dst, const char* src,
                                  CubeStats* stats) const {
  CellHeader* dh = Header(dst);
  const CellHeader* sh = Header(src);
  if (!dh->has_repr && sh->has_repr) {
    dh->repr_row = sh->repr_row;
    dh->has_repr = true;
  }
  dh->count += sh->count;
  const std::vector<AggregateFunctionPtr>& aggs = ctx->aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    DATACUBE_RETURN_IF_ERROR(
        aggs[a]->Merge(StateOf(dst, a), StateOf(src, a)));
  }
  if (stats != nullptr) stats->merge_calls += aggs.size();
  return Status::OK();
}

CellStore FlatGroupBy(const ColumnarContext& cc, GroupingSet set,
                      CubeStats* stats) {
  obs::ScopedSpan span("flat_group_by");
  CellStore cells = cc.MakeStore();
  std::vector<uint64_t> mask = cc.codec.MaskForSet(set);
  size_t num_rows = cc.ctx->num_rows();
  uint64_t before_rehashes = cells.stats().rehashes;
  // Interruption: break out chunk-wise when the execution's control has
  // tripped. The partial store is discarded by the caller, which polls
  // ControlStatus() at the next set/node boundary and unwinds with the error.
  constexpr size_t kControlChunkMask = 0xFFFF;
  if (cc.use_batch) {
    // Two-phase batched dispatch, kBatchRows rows at a time: mask the
    // packed keys in one sweep, resolve them all to cell blocks
    // (BatchUpsert), then run one IterBatch per aggregate over the chunk.
    std::vector<uint64_t> masked(kBatchRows * cc.words);
    std::vector<char*> blocks(kBatchRows);
    for (size_t row = 0; row < num_rows; row += kBatchRows) {
      if (cc.ctx->Interrupted()) break;
      size_t n = std::min(kBatchRows, num_rows - row);
      KeyCodec::MaskKeysBatch(cc.RowKey(row), n, cc.words, mask.data(),
                              masked.data());
      cells.BatchUpsert(masked.data(), n, blocks.data());
      cc.BatchIterRows(blocks.data(), nullptr, row, n, stats);
    }
  } else if (cc.words == 1) {
    uint64_t m = mask[0];
    for (size_t row = 0; row < num_rows; ++row) {
      if ((row & kControlChunkMask) == 0 && cc.ctx->Interrupted()) break;
      uint64_t key = cc.row_keys[row] & m;
      cc.IterRow(cells.FindOrInsert(&key), row, stats);
    }
  } else {
    std::vector<uint64_t> key(cc.words);
    for (size_t row = 0; row < num_rows; ++row) {
      if ((row & kControlChunkMask) == 0 && cc.ctx->Interrupted()) break;
      const uint64_t* rk = cc.RowKey(row);
      for (size_t w = 0; w < cc.words; ++w) key[w] = rk[w] & mask[w];
      cc.IterRow(cells.FindOrInsert(key.data()), row, stats);
    }
  }
  if (stats != nullptr) {
    ++stats->input_scans;
    stats->hash_cells += cells.size();
  }
  if (span.active()) {
    span.Attr("set", GroupingSetToString(set, cc.ctx->key_names));
    span.Attr("rows", static_cast<uint64_t>(num_rows));
    span.Attr("cells", static_cast<uint64_t>(cells.size()));
    span.Attr("rehashes", cells.stats().rehashes - before_rehashes);
  }
  return cells;
}

void FlushStoreStats(const SetStores& stores, CubeStats* stats) {
  if (stats == nullptr) return;
  std::vector<const CellArena*> arenas;
  auto count_arena = [&](const CellArena* arena) {
    if (arena != nullptr &&
        std::find(arenas.begin(), arenas.end(), arena) == arenas.end()) {
      arenas.push_back(arena);
      stats->arena_bytes += arena->bytes();
    }
  };
  for (const CellStore& store : stores) {
    const CellStore::Stats& s = store.stats();
    stats->hash_probes += s.probes;
    stats->hash_max_probe = std::max(stats->hash_max_probe, s.max_probe);
    stats->hash_rehashes += s.rehashes;
    stats->heap_state_allocs += s.heap_state_allocs;
    count_arena(store.arena().get());
    for (const CellArenaPtr& a : store.retained_arenas()) {
      count_arena(a.get());
    }
  }
}

}  // namespace cube_internal
}  // namespace datacube
