#ifndef DATACUBE_COMMON_STR_UTIL_H_
#define DATACUBE_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace datacube {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `text` on `sep` (single character). An empty input yields one
/// empty field, matching CSV semantics.
std::vector<std::string> Split(const std::string& text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& text);

/// ASCII lower-casing.
std::string ToLower(const std::string& text);

/// ASCII upper-casing.
std::string ToUpper(const std::string& text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Left-pads (`right_align = true`) or right-pads `text` with spaces to
/// `width`; never truncates.
std::string Pad(const std::string& text, size_t width,
                bool right_align = false);

}  // namespace datacube

#endif  // DATACUBE_COMMON_STR_UTIL_H_
