#include "datacube/common/str_util.h"

#include <algorithm>
#include <cctype>

namespace datacube {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Pad(const std::string& text, size_t width, bool right_align) {
  if (text.size() >= width) return text;
  std::string spaces(width - text.size(), ' ');
  return right_align ? spaces + text : text + spaces;
}

}  // namespace datacube
