#ifndef DATACUBE_COMMON_DATE_H_
#define DATACUBE_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "datacube/common/result.h"

namespace datacube {

/// Calendar date stored as days since the Unix epoch (1970-01-01).
/// Uses the proleptic Gregorian calendar (Howard Hinnant's civil-date
/// algorithms), valid far beyond any workload in this library.
struct Date {
  int32_t days_since_epoch = 0;

  friend bool operator==(const Date& a, const Date& b) = default;
  friend auto operator<=>(const Date& a, const Date& b) = default;
};

/// Broken-down calendar fields of a Date.
struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31
};

/// Converts calendar fields to a Date. Fields are not range-checked beyond
/// month normalization; use MakeDate for validated construction.
Date DateFromCivil(int32_t year, int32_t month, int32_t day);

/// Converts a Date back to calendar fields.
CivilDate CivilFromDate(Date date);

/// Validated construction: month must be 1..12, day valid for that month.
Result<Date> MakeDate(int32_t year, int32_t month, int32_t day);

/// Parses "YYYY-MM-DD" (also accepts "YYYY/MM/DD").
Result<Date> ParseDate(const std::string& text);

/// Formats as "YYYY-MM-DD".
std::string FormatDate(Date date);

/// Extraction functions used as grouping functions (histograms, Section 2 of
/// the paper: "group times into days, weeks, or months").
int32_t DateYear(Date date);
int32_t DateMonth(Date date);    // 1..12
int32_t DateDay(Date date);      // day of month, 1..31
int32_t DateQuarter(Date date);  // 1..4
/// ISO 8601 week number (1..53). Weeks straddle year boundaries — the paper's
/// Section 3.6 point that "weeks do not nest in months or quarters or years".
int32_t DateIsoWeek(Date date);
/// ISO week-numbering year (differs from calendar year near Jan 1 / Dec 31).
int32_t DateIsoWeekYear(Date date);
/// Day of week: 0 = Monday .. 6 = Sunday.
int32_t DateWeekday(Date date);
/// True for Saturday/Sunday.
bool DateIsWeekend(Date date);
/// Number of days in the given month of the given year.
int32_t DaysInMonth(int32_t year, int32_t month);
/// True if `year` is a Gregorian leap year.
bool IsLeapYear(int32_t year);

}  // namespace datacube

#endif  // DATACUBE_COMMON_DATE_H_
