#include "datacube/common/status.h"

namespace datacube {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace datacube
