#include "datacube/common/date.h"

#include <cstdio>

namespace datacube {

namespace {

// Howard Hinnant's days_from_civil: days since 1970-01-01 for a proleptic
// Gregorian date.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;  // [0, 399]
  const int64_t doy =
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;         // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + doe - 719468;
}

// Inverse of DaysFromCivil.
CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;  // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  CivilDate civil;
  civil.year = static_cast<int32_t>(y + (m <= 2));
  civil.month = static_cast<int32_t>(m);
  civil.day = static_cast<int32_t>(d);
  return civil;
}

}  // namespace

Date DateFromCivil(int32_t year, int32_t month, int32_t day) {
  return Date{static_cast<int32_t>(DaysFromCivil(year, month, day))};
}

CivilDate CivilFromDate(Date date) {
  return CivilFromDays(date.days_since_epoch);
}

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[] = {31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Result<Date> MakeDate(int32_t year, int32_t month, int32_t day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return DateFromCivil(year, month, day);
}

Result<Date> ParseDate(const std::string& text) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3 &&
      std::sscanf(text.c_str(), "%d/%d/%d", &year, &month, &day) != 3) {
    return Status::ParseError("cannot parse date: '" + text + "'");
  }
  return MakeDate(year, month, day);
}

std::string FormatDate(Date date) {
  CivilDate c = CivilFromDate(date);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

int32_t DateYear(Date date) { return CivilFromDate(date).year; }
int32_t DateMonth(Date date) { return CivilFromDate(date).month; }
int32_t DateDay(Date date) { return CivilFromDate(date).day; }
int32_t DateQuarter(Date date) { return (DateMonth(date) - 1) / 3 + 1; }

int32_t DateWeekday(Date date) {
  // 1970-01-01 was a Thursday (weekday index 3 with Monday = 0).
  int64_t z = date.days_since_epoch;
  return static_cast<int32_t>(((z % 7) + 7 + 3) % 7);
}

bool DateIsWeekend(Date date) { return DateWeekday(date) >= 5; }

namespace {

// The Thursday of the ISO week containing `date` determines both the ISO
// week-numbering year and, via day-count arithmetic, the week number.
Date IsoWeekThursday(Date date) {
  int32_t wd = DateWeekday(date);  // 0 = Monday
  return Date{date.days_since_epoch + (3 - wd)};
}

}  // namespace

int32_t DateIsoWeekYear(Date date) { return DateYear(IsoWeekThursday(date)); }

int32_t DateIsoWeek(Date date) {
  Date thursday = IsoWeekThursday(date);
  int32_t year = DateYear(thursday);
  Date jan1 = DateFromCivil(year, 1, 1);
  return (thursday.days_since_epoch - jan1.days_since_epoch) / 7 + 1;
}

}  // namespace datacube
