#ifndef DATACUBE_COMMON_EXEC_CONTROL_H_
#define DATACUBE_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "datacube/common/status.h"

namespace datacube {

/// Cooperative cancellation and deadline for one query execution. The owner
/// (a serving layer, a test, a caller with a timeout) creates one, hands a
/// pointer to CubeOptions::control, and may Cancel() from any thread; the
/// execution engine polls Check() at work boundaries (each morsel on the
/// parallel scan, each grouping set / lattice node on the serial paths) and
/// unwinds with kCancelled / kDeadlineExceeded when tripped.
///
/// All members are atomics: Cancel() and set_deadline* may race with an
/// in-flight execution's Check() calls by design.
class ExecControl {
 public:
  ExecControl() = default;
  ExecControl(const ExecControl&) = delete;
  ExecControl& operator=(const ExecControl&) = delete;

  /// Requests cooperative cancellation; idempotent, callable from any
  /// thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline on the steady clock; 0 nanoseconds = no deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `ms` milliseconds from now. ms <= 0 clears it.
  void set_deadline_after_ms(int64_t ms) {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms));
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// OK while the execution may continue; kCancelled after Cancel(),
  /// kDeadlineExceeded once the deadline passes. Cancellation wins when both
  /// have tripped (it is the more specific caller intent).
  Status Check() const {
    if (cancel_requested()) {
      return Status::Cancelled("query cancelled");
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in raw time_since_epoch nanoseconds (the rep of
  /// steady_clock::duration); 0 = none. Stored as an integer so it can be
  /// (re)set while an execution is polling it.
  std::atomic<int64_t> deadline_ns_{0};
};

/// Null-safe check: no control means never interrupted.
inline Status CheckControl(const ExecControl* control) {
  return control == nullptr ? Status::OK() : control->Check();
}

}  // namespace datacube

#endif  // DATACUBE_COMMON_EXEC_CONTROL_H_
