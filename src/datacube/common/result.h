#ifndef DATACUBE_COMMON_RESULT_H_
#define DATACUBE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "datacube/common/status.h"

namespace datacube {

/// Holds either a value of type T or an error Status. The library's
/// exception-free analogue of `absl::StatusOr<T>` / `arrow::Result<T>`.
///
/// Usage:
///   Result<Table> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define DATACUBE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define DATACUBE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DATACUBE_ASSIGN_OR_RETURN_NAME(a, b) \
  DATACUBE_ASSIGN_OR_RETURN_CONCAT(a, b)

#define DATACUBE_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  DATACUBE_ASSIGN_OR_RETURN_IMPL(                                             \
      DATACUBE_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace datacube

#endif  // DATACUBE_COMMON_RESULT_H_
