#include "datacube/common/codec.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace datacube {

namespace {

Status Truncated() { return Status::ParseError("codec: truncated input"); }

// Parses an integer terminated by `terminator`, advancing past it.
Result<int64_t> ParseInt(const std::string& data, size_t* pos,
                         char terminator) {
  size_t end = data.find(terminator, *pos);
  if (end == std::string::npos) return Truncated();
  char* parse_end = nullptr;
  long long v = std::strtoll(data.c_str() + *pos, &parse_end, 10);
  if (parse_end != data.c_str() + end) {
    return Status::ParseError("codec: bad integer");
  }
  *pos = end + 1;
  return static_cast<int64_t>(v);
}

}  // namespace

void EncodeValue(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      *out += "N;";
      return;
    case Value::Kind::kAll:
      *out += "A;";
      return;
    case Value::Kind::kBool:
      *out += value.bool_value() ? "B1;" : "B0;";
      return;
    case Value::Kind::kInt64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "I%" PRId64 ";", value.int64_value());
      *out += buf;
      return;
    }
    case Value::Kind::kFloat64: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "F%.17g;", value.float64_value());
      *out += buf;
      return;
    }
    case Value::Kind::kDate: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "D%d;",
                    value.date_value().days_since_epoch);
      *out += buf;
      return;
    }
    case Value::Kind::kString: {
      const std::string& s = value.string_value();
      *out += 'S';
      *out += std::to_string(s.size());
      *out += ':';
      *out += s;
      return;
    }
  }
}

Result<Value> DecodeValue(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return Truncated();
  char tag = data[(*pos)++];
  switch (tag) {
    case 'N': {
      if (*pos >= data.size() || data[(*pos)++] != ';') return Truncated();
      return Value::Null();
    }
    case 'A': {
      if (*pos >= data.size() || data[(*pos)++] != ';') return Truncated();
      return Value::All();
    }
    case 'B': {
      if (*pos + 1 >= data.size()) return Truncated();
      char b = data[(*pos)++];
      if (data[(*pos)++] != ';') return Truncated();
      return Value::Bool(b == '1');
    }
    case 'I': {
      DATACUBE_ASSIGN_OR_RETURN(int64_t v, ParseInt(data, pos, ';'));
      return Value::Int64(v);
    }
    case 'D': {
      DATACUBE_ASSIGN_OR_RETURN(int64_t v, ParseInt(data, pos, ';'));
      return Value::FromDate(Date{static_cast<int32_t>(v)});
    }
    case 'F': {
      size_t end = data.find(';', *pos);
      if (end == std::string::npos) return Truncated();
      double v = std::strtod(data.c_str() + *pos, nullptr);
      *pos = end + 1;
      return Value::Float64(v);
    }
    case 'S': {
      DATACUBE_ASSIGN_OR_RETURN(int64_t len, ParseInt(data, pos, ':'));
      if (len < 0 || *pos + static_cast<size_t>(len) > data.size()) {
        return Truncated();
      }
      Value v = Value::String(data.substr(*pos, static_cast<size_t>(len)));
      *pos += static_cast<size_t>(len);
      return v;
    }
    default:
      return Status::ParseError(std::string("codec: unknown tag '") + tag +
                                "'");
  }
}

void EncodeBlob(const std::string& blob, std::string* out) {
  *out += std::to_string(blob.size());
  *out += ':';
  *out += blob;
}

Result<std::string> DecodeBlob(const std::string& data, size_t* pos) {
  DATACUBE_ASSIGN_OR_RETURN(int64_t len, ParseInt(data, pos, ':'));
  if (len < 0 || *pos + static_cast<size_t>(len) > data.size()) {
    return Truncated();
  }
  std::string blob = data.substr(*pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return blob;
}

void EncodeCount(uint64_t n, std::string* out) {
  *out += std::to_string(n);
  *out += ' ';
}

Result<uint64_t> DecodeCount(const std::string& data, size_t* pos) {
  DATACUBE_ASSIGN_OR_RETURN(int64_t v, ParseInt(data, pos, ' '));
  if (v < 0) return Status::ParseError("codec: negative count");
  return static_cast<uint64_t>(v);
}

}  // namespace datacube
