#ifndef DATACUBE_COMMON_VALUE_H_
#define DATACUBE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "datacube/common/date.h"
#include "datacube/common/result.h"

namespace datacube {

/// Column data types supported by the relational substrate.
enum class DataType {
  kBool,
  kInt64,
  kFloat64,
  kString,
  kDate,
};

/// Human-readable type name ("INT64", ...).
const char* DataTypeName(DataType type);

/// True if the type is kInt64 or kFloat64.
bool IsNumeric(DataType type);

/// A single dynamically-typed cell value.
///
/// Besides the five concrete types, a Value can be in two special states
/// taken directly from the paper:
///   * NULL — the SQL null value (Section 3.4's "minimalist" design).
///   * ALL  — the paper's Section 3.3 token standing for "the set over which
///     the aggregate was computed". ALL is a distinct non-value: it equals
///     itself, never equals NULL or any concrete value, and like NULL it
///     "does not participate in any aggregate except COUNT()".
///
/// Values order totally (for sorting and map keys): NULL < ALL < concrete
/// values; numeric values compare across kInt64/kFloat64.
class Value {
 public:
  enum class Kind { kNull, kAll, kBool, kInt64, kFloat64, kString, kDate };

  /// Constructs NULL.
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  /// The ALL super-aggregate marker (Section 3.3).
  static Value All() {
    Value v;
    v.kind_ = Kind::kAll;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.data_ = b;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt64;
    v.data_ = i;
    return v;
  }
  static Value Float64(double d) {
    Value v;
    v.kind_ = Kind::kFloat64;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.data_ = std::move(s);
    return v;
  }
  static Value FromDate(Date d) {
    Value v;
    v.kind_ = Kind::kDate;
    v.data_ = d;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_all() const { return kind_ == Kind::kAll; }
  /// NULL or ALL — states that do not carry a concrete value.
  bool is_special() const { return is_null() || is_all(); }
  bool is_numeric() const {
    return kind_ == Kind::kInt64 || kind_ == Kind::kFloat64;
  }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double float64_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }
  Date date_value() const { return std::get<Date>(data_); }

  /// Numeric value widened to double; valid only for numeric kinds.
  double AsDouble() const {
    return kind_ == Kind::kInt64 ? static_cast<double>(int64_value())
                                 : float64_value();
  }

  /// The concrete DataType of this value; error for NULL/ALL.
  Result<DataType> type() const;

  /// Casts to `target`, widening numerics and parsing strings where the
  /// conversion is unambiguous. NULL and ALL pass through unchanged.
  Result<Value> CastTo(DataType target) const;

  /// Display form: "NULL", "ALL", or the formatted value.
  std::string ToString() const;

  /// Total-order comparison used for sorting and B-tree-style keys:
  /// NULL < ALL < concrete values; numerics compare by magnitude across
  /// int64/float64 (exactly — no precision loss beyond 2^53); otherwise
  /// values of different kinds order by kind. Doubles follow a total order:
  /// -inf < finite < +inf < NaN, with -0.0 == +0.0 and NaN == NaN, so sorted
  /// and hashed algorithms group identically on adversarial keys.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL-style equality used by grouping: NULL groups with NULL, ALL with
  /// ALL (the paper treats ALL "like NULL" for key purposes).
  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  /// Stable hash consistent with operator==.
  size_t Hash() const;

 private:
  Kind kind_;
  std::variant<std::monostate, bool, int64_t, double, std::string, Date> data_;
};

/// Functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Combines two hash values (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a sequence of Values (a grouping key).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0xcbf29ce484222325ULL;
    for (const Value& v : vs) seed = HashCombine(seed, v.Hash());
    return seed;
  }
};

}  // namespace datacube

#endif  // DATACUBE_COMMON_VALUE_H_
