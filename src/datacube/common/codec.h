#ifndef DATACUBE_COMMON_CODEC_H_
#define DATACUBE_COMMON_CODEC_H_

#include <string>

#include "datacube/common/result.h"
#include "datacube/common/value.h"

namespace datacube {

/// A compact, exact, text-safe encoding of Values used by the persistence
/// layer (cube checkpoints). Unlike CSV it round-trips types, NULL vs ALL vs
/// empty string, and floating-point bits (%.17g).
///
/// Format (self-delimiting): N; A; B0; B1; I<int>; F<float>; D<days>;
/// S<len>:<bytes>
void EncodeValue(const Value& value, std::string* out);

/// Decodes one value starting at *pos, advancing *pos past it.
Result<Value> DecodeValue(const std::string& data, size_t* pos);

/// Length-prefixed raw string (used for scratchpad blobs): <len>:<bytes>
void EncodeBlob(const std::string& blob, std::string* out);
Result<std::string> DecodeBlob(const std::string& data, size_t* pos);

/// Unsigned integer with trailing space (header fields).
void EncodeCount(uint64_t n, std::string* out);
Result<uint64_t> DecodeCount(const std::string& data, size_t* pos);

}  // namespace datacube

#endif  // DATACUBE_COMMON_CODEC_H_
