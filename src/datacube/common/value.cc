#include "datacube/common/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

namespace datacube {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64;
}

Result<DataType> Value::type() const {
  switch (kind_) {
    case Kind::kBool:
      return DataType::kBool;
    case Kind::kInt64:
      return DataType::kInt64;
    case Kind::kFloat64:
      return DataType::kFloat64;
    case Kind::kString:
      return DataType::kString;
    case Kind::kDate:
      return DataType::kDate;
    case Kind::kNull:
    case Kind::kAll:
      return Status::TypeError("NULL/ALL has no concrete type");
  }
  return Status::Internal("corrupt Value kind");
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_special()) return *this;
  switch (target) {
    case DataType::kBool:
      if (kind_ == Kind::kBool) return *this;
      if (kind_ == Kind::kInt64) return Value::Bool(int64_value() != 0);
      break;
    case DataType::kInt64:
      if (kind_ == Kind::kInt64) return *this;
      if (kind_ == Kind::kBool) return Value::Int64(bool_value() ? 1 : 0);
      if (kind_ == Kind::kFloat64) {
        double d = float64_value();
        // llround on NaN or values outside [-2^63, 2^63) is UB; reject them.
        // The bounds are exact doubles: every double < 2^63 rounds to an
        // in-range int64 (doubles near 2^63 are all integral).
        if (std::isnan(d) || d < -9223372036854775808.0 ||
            d >= 9223372036854775808.0) {
          return Status::InvalidArgument("FLOAT64 " + ToString() +
                                         " out of INT64 range");
        }
        return Value::Int64(std::llround(d));
      }
      if (kind_ == Kind::kString) {
        char* end = nullptr;
        const std::string& s = string_value();
        errno = 0;
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end != s.c_str() && *end == '\0') {
          if (errno == ERANGE) {
            return Status::InvalidArgument("integer literal " + s +
                                           " out of INT64 range");
          }
          return Value::Int64(v);
        }
      }
      break;
    case DataType::kFloat64:
      if (kind_ == Kind::kFloat64) return *this;
      if (kind_ == Kind::kInt64) {
        return Value::Float64(static_cast<double>(int64_value()));
      }
      if (kind_ == Kind::kBool) return Value::Float64(bool_value() ? 1.0 : 0.0);
      if (kind_ == Kind::kString) {
        char* end = nullptr;
        const std::string& s = string_value();
        double v = std::strtod(s.c_str(), &end);
        if (end != s.c_str() && *end == '\0') return Value::Float64(v);
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kDate:
      if (kind_ == Kind::kDate) return *this;
      if (kind_ == Kind::kString) {
        DATACUBE_ASSIGN_OR_RETURN(Date d, ParseDate(string_value()));
        return Value::FromDate(d);
      }
      break;
  }
  return Status::TypeError(std::string("cannot cast ") + ToString() + " to " +
                           DataTypeName(target));
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kAll:
      return "ALL";
    case Kind::kBool:
      return bool_value() ? "true" : "false";
    case Kind::kInt64:
      return std::to_string(int64_value());
    case Kind::kFloat64: {
      double d = float64_value();
      // The range guard must run first: casting a double outside int64 range
      // (or NaN) to int64 is UB. |d| < 1e15 also filters NaN and infinities.
      if (std::abs(d) < 1e15 && d == static_cast<int64_t>(d)) {
        // Integral doubles print without a trailing ".000000".
        return std::to_string(static_cast<int64_t>(d));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case Kind::kString:
      return string_value();
    case Kind::kDate:
      return FormatDate(date_value());
  }
  return "corrupt";
}

namespace {

// Rank used to order Values of different kinds; numerics share a rank so
// they compare by magnitude.
int KindRank(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull:
      return 0;
    case Value::Kind::kAll:
      return 1;
    case Value::Kind::kBool:
      return 2;
    case Value::Kind::kInt64:
    case Value::Kind::kFloat64:
      return 3;
    case Value::Kind::kDate:
      return 4;
    case Value::Kind::kString:
      return 5;
  }
  return 6;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

// Total order over doubles: -inf < finite < +inf < NaN, with -0.0 == +0.0
// and every NaN equal to every other NaN. Plain operator< breaks the strict
// weak ordering sorted algorithms rely on when NaN appears in a key column
// (NaN would compare "equal" to everything), making sorted and hashed
// group-bys disagree.
int CmpDouble(double a, double b) {
  bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return (na ? 1 : 0) - (nb ? 1 : 0);
  return Cmp(a, b);  // IEEE compare; -0.0 == +0.0
}

// Exact int64 vs double comparison. Widening the int64 to double (AsDouble)
// loses precision beyond 2^53, silently equating distinct grouping keys such
// as 2^53 and 2^53+1.
int CmpInt64Double(int64_t i, double d) {
  if (std::isnan(d)) return -1;  // every number < NaN
  // 2^63 as a double is exact; any double >= it exceeds every int64, and
  // any double < -2^63 is below every int64 (-2^63 itself is an int64).
  if (d >= 9223372036854775808.0) return -1;
  if (d < -9223372036854775808.0) return 1;
  // Now floor(d) fits in int64 exactly (doubles in range are either integral
  // or have an in-range integral floor).
  double fl = std::floor(d);
  int64_t fi = static_cast<int64_t>(fl);
  if (i != fi) return i < fi ? -1 : 1;
  return d > fl ? -1 : 0;  // equal integer part: fractional d is larger
}

// True when int64 `i` converts to double and back without loss, i.e. some
// double is exactly equal to it.
bool Int64FitsDouble(int64_t i, double* out) {
  double d = static_cast<double>(i);
  if (d >= 9223372036854775808.0 || d < -9223372036854775808.0) return false;
  if (static_cast<int64_t>(d) != i) return false;
  *out = d;
  return true;
}

constexpr size_t kNanHash = 0x7fc00000a110c8edULL;

// Hash of a double consistent with CmpDouble equality: one hash for every
// NaN, and -0.0 canonicalized to +0.0.
size_t HashDouble(double d) {
  if (std::isnan(d)) return kNanHash;
  if (d == 0.0) return std::hash<double>()(0.0);  // collapse -0.0
  return std::hash<double>()(d);
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind_), rb = KindRank(other.kind_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind_) {
    case Kind::kNull:
    case Kind::kAll:
      return 0;
    case Kind::kBool:
      return Cmp(bool_value(), other.bool_value());
    case Kind::kInt64:
      if (other.kind_ == Kind::kInt64) {
        return Cmp(int64_value(), other.int64_value());
      }
      return CmpInt64Double(int64_value(), other.float64_value());
    case Kind::kFloat64:
      if (other.kind_ == Kind::kInt64) {
        return -CmpInt64Double(other.int64_value(), float64_value());
      }
      return CmpDouble(float64_value(), other.float64_value());
    case Kind::kString:
      return Cmp(string_value(), other.string_value());
    case Kind::kDate:
      return Cmp(date_value().days_since_epoch,
                 other.date_value().days_since_epoch);
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x6e756c6cULL;
    case Kind::kAll:
      return 0x616c6cULL;
    case Kind::kBool:
      return std::hash<bool>()(bool_value()) ^ 0xb0;
    case Kind::kInt64: {
      // An int64 equals a float64 only when some double represents it
      // exactly; hash through the double in that case so Hash agrees with
      // Compare. Int64s beyond double precision can equal no double, so they
      // may hash by integer value.
      double d;
      if (Int64FitsDouble(int64_value(), &d)) return std::hash<double>()(d);
      return std::hash<int64_t>()(int64_value()) ^ 0x164;
    }
    case Kind::kFloat64:
      // Integral doubles hash identically to the equal int64 (Compare treats
      // them as equal, so Hash must agree); NaN and -0.0 are canonicalized.
      return HashDouble(float64_value());
    case Kind::kString:
      return std::hash<std::string>()(string_value());
    case Kind::kDate:
      return std::hash<int32_t>()(date_value().days_since_epoch) ^ 0xda7e;
  }
  return 0;
}

}  // namespace datacube
