#include "datacube/common/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

namespace datacube {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64;
}

Result<DataType> Value::type() const {
  switch (kind_) {
    case Kind::kBool:
      return DataType::kBool;
    case Kind::kInt64:
      return DataType::kInt64;
    case Kind::kFloat64:
      return DataType::kFloat64;
    case Kind::kString:
      return DataType::kString;
    case Kind::kDate:
      return DataType::kDate;
    case Kind::kNull:
    case Kind::kAll:
      return Status::TypeError("NULL/ALL has no concrete type");
  }
  return Status::Internal("corrupt Value kind");
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_special()) return *this;
  switch (target) {
    case DataType::kBool:
      if (kind_ == Kind::kBool) return *this;
      if (kind_ == Kind::kInt64) return Value::Bool(int64_value() != 0);
      break;
    case DataType::kInt64:
      if (kind_ == Kind::kInt64) return *this;
      if (kind_ == Kind::kBool) return Value::Int64(bool_value() ? 1 : 0);
      if (kind_ == Kind::kFloat64) {
        return Value::Int64(static_cast<int64_t>(std::llround(float64_value())));
      }
      if (kind_ == Kind::kString) {
        char* end = nullptr;
        const std::string& s = string_value();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end != s.c_str() && *end == '\0') return Value::Int64(v);
      }
      break;
    case DataType::kFloat64:
      if (kind_ == Kind::kFloat64) return *this;
      if (kind_ == Kind::kInt64) {
        return Value::Float64(static_cast<double>(int64_value()));
      }
      if (kind_ == Kind::kBool) return Value::Float64(bool_value() ? 1.0 : 0.0);
      if (kind_ == Kind::kString) {
        char* end = nullptr;
        const std::string& s = string_value();
        double v = std::strtod(s.c_str(), &end);
        if (end != s.c_str() && *end == '\0') return Value::Float64(v);
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kDate:
      if (kind_ == Kind::kDate) return *this;
      if (kind_ == Kind::kString) {
        DATACUBE_ASSIGN_OR_RETURN(Date d, ParseDate(string_value()));
        return Value::FromDate(d);
      }
      break;
  }
  return Status::TypeError(std::string("cannot cast ") + ToString() + " to " +
                           DataTypeName(target));
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kAll:
      return "ALL";
    case Kind::kBool:
      return bool_value() ? "true" : "false";
    case Kind::kInt64:
      return std::to_string(int64_value());
    case Kind::kFloat64: {
      double d = float64_value();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        // Integral doubles print without a trailing ".000000".
        return std::to_string(static_cast<int64_t>(d));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case Kind::kString:
      return string_value();
    case Kind::kDate:
      return FormatDate(date_value());
  }
  return "corrupt";
}

namespace {

// Rank used to order Values of different kinds; numerics share a rank so
// they compare by magnitude.
int KindRank(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull:
      return 0;
    case Value::Kind::kAll:
      return 1;
    case Value::Kind::kBool:
      return 2;
    case Value::Kind::kInt64:
    case Value::Kind::kFloat64:
      return 3;
    case Value::Kind::kDate:
      return 4;
    case Value::Kind::kString:
      return 5;
  }
  return 6;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind_), rb = KindRank(other.kind_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind_) {
    case Kind::kNull:
    case Kind::kAll:
      return 0;
    case Kind::kBool:
      return Cmp(bool_value(), other.bool_value());
    case Kind::kInt64:
      if (other.kind_ == Kind::kInt64) {
        return Cmp(int64_value(), other.int64_value());
      }
      return Cmp(AsDouble(), other.AsDouble());
    case Kind::kFloat64:
      return Cmp(AsDouble(), other.AsDouble());
    case Kind::kString:
      return Cmp(string_value(), other.string_value());
    case Kind::kDate:
      return Cmp(date_value().days_since_epoch,
                 other.date_value().days_since_epoch);
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x6e756c6cULL;
    case Kind::kAll:
      return 0x616c6cULL;
    case Kind::kBool:
      return std::hash<bool>()(bool_value()) ^ 0xb0;
    case Kind::kInt64:
      return std::hash<double>()(static_cast<double>(int64_value()));
    case Kind::kFloat64:
      // Integral doubles hash identically to the equal int64 (Compare treats
      // them as equal, so Hash must agree).
      return std::hash<double>()(float64_value());
    case Kind::kString:
      return std::hash<std::string>()(string_value());
    case Kind::kDate:
      return std::hash<int32_t>()(date_value().days_since_epoch) ^ 0xda7e;
  }
  return 0;
}

}  // namespace datacube
