#ifndef DATACUBE_COMMON_STATUS_H_
#define DATACUBE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace datacube {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kParseError,
  kNotImplemented,
  kInternal,
  kIOError,
  /// The caller (or an admin) cancelled the operation cooperatively.
  kCancelled,
  /// The operation's deadline passed before it finished.
  kDeadlineExceeded,
  /// The service is temporarily over capacity (admission control).
  kUnavailable,
};

/// A success-or-error outcome. All fallible public APIs in this library
/// return `Status` (or `Result<T>`, which wraps one). `Status` is cheap to
/// copy in the OK case and carries a code plus human-readable message
/// otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DATACUBE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::datacube::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace datacube

#endif  // DATACUBE_COMMON_STATUS_H_
