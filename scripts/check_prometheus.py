#!/usr/bin/env python3
"""Validates Prometheus text exposition format (version 0.0.4).

Reads the exposition from a file argument (or stdin) and checks:
  - every non-comment line parses as `name[{labels}] value`
  - metric and label names match the Prometheus grammar
  - values parse as floats (including +Inf/-Inf/NaN)
  - each family has at most one HELP and one TYPE line, appearing before
    its first sample
  - TYPE is one of counter/gauge/histogram/summary/untyped
  - no duplicate (name, labels) series
  - histogram families expose _bucket/_sum/_count consistently

Exits 0 when the input is clean, 1 with one line per problem otherwise.
Used by the CI observability smoke job against a live /metrics endpoint;
needs only the Python standard library.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(name):
    """Maps histogram/summary sample names to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text):
    errors = []
    helps = {}      # family -> line number of HELP
    types = {}      # family -> declared type
    seen_sample = set()   # families that already emitted a sample
    series = set()        # (name, canonical labels) pairs

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue

        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed HELP line")
                continue
            family = parts[2]
            if not METRIC_NAME_RE.match(family):
                errors.append(f"line {lineno}: bad metric name {family!r}")
            if family in helps:
                errors.append(
                    f"line {lineno}: duplicate HELP for {family} "
                    f"(first at line {helps[family]})")
            if family in seen_sample:
                errors.append(
                    f"line {lineno}: HELP for {family} after its samples")
            helps[family] = lineno
            continue

        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            family, kind = parts[2], parts[3]
            if not METRIC_NAME_RE.match(family):
                errors.append(f"line {lineno}: bad metric name {family!r}")
            if kind not in VALID_TYPES:
                errors.append(
                    f"line {lineno}: unknown type {kind!r} for {family}")
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family}")
            if family in seen_sample:
                errors.append(
                    f"line {lineno}: TYPE for {family} after its samples")
            types[family] = kind
            continue

        if line.startswith("#"):
            continue  # other comments are allowed anywhere

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = m.group("name")
        labels_text = m.group("labels")
        labels = []
        if labels_text:
            consumed = 0
            for lm in LABEL_RE.finditer(labels_text):
                labels.append((lm.group(1), lm.group(2)))
                consumed = lm.end()
                if not LABEL_NAME_RE.match(lm.group(1)):
                    errors.append(
                        f"line {lineno}: bad label name {lm.group(1)!r}")
            leftover = labels_text[consumed:].strip(", ")
            if leftover:
                errors.append(
                    f"line {lineno}: malformed labels near {leftover!r}")
        try:
            float(m.group("value"))
        except ValueError:
            if m.group("value") not in ("+Inf", "-Inf", "NaN"):
                errors.append(
                    f"line {lineno}: bad sample value {m.group('value')!r}")

        key = (name, tuple(sorted(labels)))
        if key in series:
            errors.append(f"line {lineno}: duplicate series {line!r}")
        series.add(key)
        seen_sample.add(base_family(name))

    # Histogram families must expose all three sample kinds.
    for family, kind in types.items():
        if kind != "histogram" or family not in seen_sample:
            continue
        names = {n for (n, _) in series}
        for suffix in ("_bucket", "_sum", "_count"):
            if family + suffix not in names:
                errors.append(
                    f"histogram {family} is missing {family}{suffix} samples")

    return errors


def main(argv):
    if len(argv) > 2 or (len(argv) == 2 and argv[1] in ("-h", "--help")):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if len(argv) == 2:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors = check(text)
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"FAIL: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#"))
    print(f"OK: {samples} samples, valid Prometheus exposition")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
