#!/usr/bin/env python3
"""End-to-end smoke for cubed: concurrent clients, deadlines, slow-loris.

Usage: cubed_smoke.py <base-url>

Drives a running cubed (boot it first, e.g. `cubed --port 0` and scrape the
"listening on" line) through the serving surface the unit tests can't cover
end-to-end:

  * N concurrent /query clients issuing mini-SQL, all answers checked
  * register / query / drop round trip through snapshot swaps under load
  * a per-query deadline that must come back 504, not hang
  * a slow-loris client dribbling bytes at /metrics while a fast scrape
    must still complete promptly (locks in the serial-accept-loop fix),
    with the loris itself ending in 408
  * method handling: POST /metrics is 405, HEAD /metrics is headers-only
  * line protocol: one-line SQL over a raw TCP connection
  * ingest-under-query: one ingester streaming rows into the partitioned
    Events store while four queriers watch COUNT(*) (which must be
    monotonically non-decreasing — snapshots may lag but never travel
    backwards) and one client forces compaction passes throughout

Exits nonzero with a message on the first failure.
"""

import json
import select
import socket
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def fetch(url, method="GET", data=None, timeout=10):
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()


def query(base, sql, extra=""):
    q = urllib.parse.quote(sql)
    return fetch(f"{base}/query?q={q}{extra}")


def check_concurrent_queries(base, num_clients=6, per_client=4):
    sql = "SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model"
    errors = []

    def client(idx):
        for _ in range(per_client):
            status, body = query(base, sql)
            if status != 200:
                errors.append(f"client {idx}: HTTP {status}: {body.strip()}")
                return
            if "ALL,510" not in body:
                errors.append(f"client {idx}: bad cube result: {body!r}")
                return

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(num_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for e in errors:
        fail(e)
    if not errors:
        print(f"ok: {num_clients} concurrent clients x {per_client} queries")


def check_register_roundtrip(base):
    csv = "kind,n\ncat,2\ndog,3\n"
    status, body = fetch(f"{base}/register?name=smoke_pets",
                         method="POST", data=csv.encode())
    if status != 200:
        return fail(f"/register: HTTP {status}: {body.strip()}")
    status, body = query(base,
                         "SELECT kind, SUM(n) FROM smoke_pets GROUP BY CUBE kind")
    if status != 200 or "ALL,5" not in body:
        return fail(f"query over registered table: HTTP {status}: {body!r}")
    status, body = fetch(f"{base}/drop?name=smoke_pets", method="POST")
    if status != 200:
        return fail(f"/drop: HTTP {status}: {body.strip()}")
    status, body = query(base, "SELECT kind, SUM(n) FROM smoke_pets GROUP BY kind")
    if status != 404:
        return fail(f"query after drop: expected 404, got {status}")
    print("ok: register / query / drop round trip")


def check_deadline(base):
    sql = ("SELECT Model, Color, Dealer, SUM(Units), AVG(Price) "
           "FROM BigSales GROUP BY CUBE Model, Color, Dealer")
    for _ in range(3):
        status, body = query(base, sql, "&deadline_ms=1")
        if status == 504:
            print("ok: 1ms deadline came back 504")
            return
    fail(f"deadline query: expected 504, last got {status}: {body.strip()}")


def check_slow_loris(base):
    host, port = urllib.parse.urlparse(base).netloc.rsplit(":", 1)
    loris_result = {}

    def loris():
        s = socket.create_connection((host, int(port)), timeout=15)
        try:
            s.sendall(b"GET /metrics HTTP/1.1\r\n")
            # Dribble header bytes until the server answers (408) or the
            # dribble budget runs out; poll for the response between bytes
            # so it is read while the server is still draining us.
            data = b""
            for ch in b"X-Slow: " + b"a" * 200:
                if select.select([s], [], [], 0)[0]:
                    break
                try:
                    s.sendall(bytes([ch]))
                except OSError:
                    break
                time.sleep(0.05)
            s.settimeout(10)
            try:
                while chunk := s.recv(4096):
                    data += chunk
            except OSError:
                pass
            loris_result["response"] = data.decode(errors="replace")
        finally:
            s.close()

    t = threading.Thread(target=loris)
    t.start()
    time.sleep(0.3)  # let the loris get its claws in
    start = time.monotonic()
    status, body = fetch(f"{base}/metrics")
    elapsed = time.monotonic() - start
    if status != 200:
        fail(f"scrape during slow-loris: HTTP {status}")
    elif elapsed > 2.0:
        fail(f"scrape during slow-loris took {elapsed:.2f}s "
             "(serial connection handling regression)")
    else:
        print(f"ok: /metrics scraped in {elapsed * 1000:.0f}ms "
              "while a slow-loris client stalled")
    t.join()
    resp = loris_result.get("response", "")
    if "408" not in resp.split("\r\n", 1)[0]:
        fail(f"slow-loris client: expected 408, got {resp[:80]!r}")
    else:
        print("ok: slow-loris client answered 408")


def check_methods(base):
    status, _ = fetch(f"{base}/metrics", method="POST", data=b"x")
    if status != 405:
        fail(f"POST /metrics: expected 405, got {status}")
    else:
        print("ok: POST /metrics rejected with 405")
    req = urllib.request.Request(f"{base}/metrics", method="HEAD")
    with urllib.request.urlopen(req, timeout=10) as resp:
        clen = int(resp.headers["Content-Length"])
        body = resp.read()
    if clen <= 0 or body:
        fail(f"HEAD /metrics: Content-Length {clen}, body {len(body)} bytes")
    else:
        print("ok: HEAD /metrics is headers-only with true Content-Length")


def check_line_protocol(base):
    host, port = urllib.parse.urlparse(base).netloc.rsplit(":", 1)
    s = socket.create_connection((host, int(port)), timeout=10)
    s.sendall(b"SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model\n")
    data = b""
    while chunk := s.recv(4096):
        data += chunk
    s.close()
    text = data.decode()
    if "HTTP/" in text or "ALL,510" not in text:
        return fail(f"line protocol: unexpected response {text[:120]!r}")
    print("ok: line protocol answered raw CSV")


def check_introspection(base):
    status, body = fetch(f"{base}/healthz")
    if status != 200 or not json.loads(body).get("ok"):
        return fail(f"/healthz: HTTP {status}: {body.strip()}")
    status, body = fetch(f"{base}/tables")
    names = [t["name"] for t in json.loads(body)["tables"]]
    if "Sales" not in names or "BigSales" not in names:
        return fail(f"/tables missing preloads: {names}")
    status, body = fetch(f"{base}/queries")
    json.loads(body)
    print("ok: /healthz /tables /queries")


def check_ingest_under_query(base, batches=30, rows_per_batch=20):
    """One ingester, four COUNT(*) queriers, one compaction forcer.

    The partitioned store swaps immutable partition lists while ingest
    appends to open deltas, so a reader may see a count that lags the
    ingester -- but it must never see one shrink (that would mean a read
    caught a half-published compaction or lost a delta)."""
    status, body = fetch(f"{base}/partitions")
    if status != 200 or "Events" not in body:
        return fail(f"/partitions: HTTP {status}: {body[:120]!r}")
    status, body = query(base, "SELECT COUNT(*) FROM Events")
    if status != 200:
        return fail(f"COUNT over Events: HTTP {status}: {body.strip()}")
    base_count = int(body.strip().splitlines()[-1])

    stop = threading.Event()
    errors = []

    def ingester():
        sources = ["web", "app", "api"]
        for b in range(batches):
            lines = []
            for r in range(rows_per_batch):
                ts = 100_000 + b * 500 + r  # crosses window boundaries
                lines.append(f"{ts},{sources[r % 3]},smoke,{r}")
            body = "\n".join(lines).encode()
            status, text = fetch(f"{base}/ingest?table=Events&header=0",
                                 method="POST", data=body)
            if status != 200:
                errors.append(f"ingester: HTTP {status}: {text.strip()}")
                return
            time.sleep(0.01)

    def querier(idx):
        last = base_count
        while not stop.is_set():
            status, body = query(base, "SELECT COUNT(*) FROM Events")
            if status != 200:
                errors.append(f"querier {idx}: HTTP {status}: {body.strip()}")
                return
            count = int(body.strip().splitlines()[-1])
            if count < last:
                errors.append(
                    f"querier {idx}: COUNT(*) went backwards: {last} -> {count}")
                return
            last = count

    def compactor():
        while not stop.is_set():
            status, body = fetch(f"{base}/compact?table=Events",
                                 method="POST", data=b"")
            if status != 200:
                errors.append(f"compactor: HTTP {status}: {body.strip()}")
                return
            time.sleep(0.05)

    ingest_thread = threading.Thread(target=ingester)
    others = [threading.Thread(target=querier, args=(i,)) for i in range(4)]
    others.append(threading.Thread(target=compactor))
    ingest_thread.start()
    for t in others:
        t.start()
    ingest_thread.join()
    stop.set()
    for t in others:
        t.join()
    for e in errors:
        fail(e)
    if errors:
        return
    status, body = query(base, "SELECT COUNT(*) FROM Events")
    final = int(body.strip().splitlines()[-1])
    expected = base_count + batches * rows_per_batch
    if final != expected:
        return fail(f"ingest total: expected {expected}, got {final}")
    status, body = query(
        base, "SELECT COUNT(*) FROM Events WHERE ts >= 100000")
    if status != 200 or int(body.strip().splitlines()[-1]) != batches * rows_per_batch:
        return fail(f"pruned count over ingested range: HTTP {status}: {body!r}")
    print(f"ok: ingest-under-query ({expected} rows, 4 queriers monotonic, "
          "compaction forced throughout)")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    base = sys.argv[1].rstrip("/")
    check_concurrent_queries(base)
    check_register_roundtrip(base)
    check_deadline(base)
    check_slow_loris(base)
    check_methods(base)
    check_line_protocol(base)
    check_introspection(base)
    check_ingest_under_query(base)
    if FAILURES:
        print(f"{len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("cubed smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
